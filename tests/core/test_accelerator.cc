/**
 * @file
 * Tests for the spatially expanded accelerator model.
 */

#include <gtest/gtest.h>

#include <csignal>

#include "ann/fixed_mlp.hh"
#include "ann/trainer.hh"
#include "core/accelerator.hh"
#include "core/injector.hh"
#include "data/synth_uci.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

TEST(Accelerator, CleanForwardMatchesFixedMlpBitExact)
{
    // The defect-free accelerator must be bit-identical to the
    // fixed-point reference when the logical network fills the
    // array exactly.
    MlpTopology topo{12, 4, 3};
    Accelerator accel(smallArray(), topo);
    FixedMlp ref(topo);
    MlpWeights w(topo);
    Rng rng(2);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);
    ref.setWeights(w);
    for (int t = 0; t < 50; ++t) {
        std::vector<double> in(12);
        for (double &v : in)
            v = rng.nextDouble();
        Activations a = accel.forward(in);
        Activations b = ref.forward(in);
        EXPECT_EQ(a.output(), b.output());
        EXPECT_EQ(a.hidden(), b.hidden());
    }
}

TEST(Accelerator, LogicalSubsetMatchesFixedMlp)
{
    // A smaller logical task mapped onto a larger array behaves
    // exactly like the task-sized reference.
    MlpTopology topo{5, 3, 2};
    Accelerator accel(smallArray(), topo);
    FixedMlp ref(topo);
    MlpWeights w(topo);
    Rng rng(3);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);
    ref.setWeights(w);
    for (int t = 0; t < 50; ++t) {
        std::vector<double> in(5);
        for (double &v : in)
            v = rng.nextDouble();
        EXPECT_EQ(accel.forward(in).output(), ref.forward(in).output());
    }
}

TEST(Accelerator, PaperConfigurationDefaults)
{
    AcceleratorConfig cfg;
    EXPECT_EQ(cfg.inputs, 90);
    EXPECT_EQ(cfg.hidden, 10);
    EXPECT_EQ(cfg.outputs, 10);
}

TEST(Accelerator, UnitCounts)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    // Synapses: 4*13 + 3*5 = 67 latches and multipliers each.
    EXPECT_EQ(accel.unitCount(UnitKind::WeightLatch), 67);
    EXPECT_EQ(accel.unitCount(UnitKind::Multiplier), 67);
    // Adder stages: 4*12 + 3*4 = 60.
    EXPECT_EQ(accel.unitCount(UnitKind::AdderStage), 60);
    EXPECT_EQ(accel.unitCount(UnitKind::Activation), 7);
}

TEST(Accelerator, RejectsOversizedLogicalNetwork)
{
    EXPECT_EXIT(
        {
            Accelerator accel(smallArray(), {13, 4, 3});
        },
        ::testing::KilledBySignal(SIGABRT), "does not fit");
}

TEST(Accelerator, InjectAndClearDefects)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    Rng rng(5);
    UnitSite site{UnitKind::Multiplier, Layer::Hidden, 1, 3};
    auto recs = accel.injectDefects(site, 3, rng);
    EXPECT_EQ(recs.size(), 3u);
    ASSERT_EQ(accel.faultySites().size(), 1u);
    EXPECT_EQ(accel.faultySites()[0], site);
    accel.clearDefects();
    EXPECT_TRUE(accel.faultySites().empty());
}

TEST(Accelerator, DefectsAccumulateAtSameSite)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    Rng rng(5);
    UnitSite site{UnitKind::Multiplier, Layer::Hidden, 0, 0};
    accel.injectDefects(site, 1, rng);
    accel.injectDefects(site, 2, rng);
    EXPECT_EQ(accel.faultySites().size(), 1u);
}

TEST(Accelerator, ManyMultiplierDefectsChangeOutputs)
{
    MlpTopology topo{12, 4, 3};
    Accelerator accel(smallArray(), topo);
    FixedMlp ref(topo);
    MlpWeights w(topo);
    Rng rng(7);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);
    ref.setWeights(w);

    // Saturate one hidden multiplier with defects: some input must
    // now deviate from the clean reference.
    UnitSite site{UnitKind::Multiplier, Layer::Hidden, 0, 2};
    accel.injectDefects(site, 25, rng);
    bool deviated = false;
    for (int t = 0; t < 100 && !deviated; ++t) {
        std::vector<double> in(12);
        for (double &v : in)
            v = rng.nextDouble();
        deviated = accel.forward(in).hidden() != ref.forward(in).hidden();
    }
    EXPECT_TRUE(deviated);
}

TEST(Accelerator, FaultyWeightLatchCorruptsStorage)
{
    MlpTopology topo{12, 4, 3};
    Accelerator accel(smallArray(), topo);
    Rng rng(11);
    UnitSite site{UnitKind::WeightLatch, Layer::Hidden, 2, 5};
    accel.injectDefects(site, 20, rng);

    MlpWeights w(topo);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);
    // The probe recorded the |stored - intended| deviation.
    const DeviationProbe &p = accel.probe(site);
    EXPECT_GT(p.amplitude.count(), 0u);
}

TEST(Accelerator, ProbeRecordsMultiplierDeviation)
{
    MlpTopology topo{12, 4, 3};
    Accelerator accel(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(13);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);
    UnitSite site{UnitKind::Multiplier, Layer::Output, 1, 2};
    accel.injectDefects(site, 10, rng);
    std::vector<double> in(12, 0.5);
    accel.forward(in);
    EXPECT_EQ(accel.probe(site).amplitude.count(), 1u);
    accel.clearProbes();
    EXPECT_EQ(accel.probe(site).amplitude.count(), 0u);
}

TEST(Accelerator, CleanSiteProbeIsEmpty)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    UnitSite site{UnitKind::Activation, Layer::Hidden, 0, 0};
    EXPECT_EQ(accel.probe(site).amplitude.count(), 0u);
}

TEST(Accelerator, TrainableThroughFaultyForward)
{
    // End-to-end: inject defects, retrain through the faulty
    // hardware, accuracy recovers above chance.
    Rng gen(17);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 120);
    AcceleratorConfig cfg;
    cfg.inputs = 16;
    cfg.hidden = 6;
    cfg.outputs = 3;
    MlpTopology topo{4, 6, 3};
    Accelerator accel(cfg, topo);

    Trainer trainer({6, 60, 0.2, 0.1});
    Rng rng(5);
    MlpWeights clean = trainer.train(accel, ds, rng);
    double clean_acc = evalAccuracy(accel, ds);
    EXPECT_GT(clean_acc, 0.8);

    DefectInjector injector(accel, SitePool::inputAndHidden());
    injector.inject(4, rng);
    Trainer retrainer({6, 30, 0.2, 0.1});
    retrainer.train(accel, ds, rng, &clean);
    double faulty_acc = evalAccuracy(accel, ds);
    EXPECT_GT(faulty_acc, 0.6) << "retraining failed to recover";
}

TEST(Accelerator, ForwardBatchMatchesPerRowForward)
{
    // Two accelerators with identical defects: one fed row by row,
    // one through forwardBatch (64-lane gate-level batches under
    // the hood). Outputs and per-site deviation-probe statistics
    // must be bit-identical — the invariant that makes the batched
    // campaigns equivalent to the scalar ones.
    MlpTopology topo{12, 4, 3};
    Accelerator a(smallArray(), topo);
    Accelerator b(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(23);
    w.initRandom(rng, 2.0);

    Rng inj_a(31), inj_b(31);
    DefectInjector ia(a, SitePool::all());
    ia.inject(6, inj_a);
    DefectInjector ib(b, SitePool::all());
    ib.inject(6, inj_b);
    ASSERT_EQ(a.faultySites(), b.faultySites());
    a.setWeights(w);
    b.setWeights(w);

    // 150 rows: two full 64-lane batches plus a 22-lane remainder.
    std::vector<std::vector<double>> rows(150,
                                          std::vector<double>(12));
    for (auto &r : rows)
        for (double &v : r)
            v = rng.nextDouble();
    std::vector<Activations> batch = b.forwardBatch(rows);
    ASSERT_EQ(batch.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        Activations ref = a.forward(rows[i]);
        EXPECT_EQ(ref.output(), batch[i].output()) << "row " << i;
        EXPECT_EQ(ref.hidden(), batch[i].hidden()) << "row " << i;
    }

    for (const UnitSite &s : a.faultySites()) {
        const DeviationProbe &pa = a.probe(s);
        const DeviationProbe &pb = b.probe(s);
        EXPECT_EQ(pa.amplitude.count(), pb.amplitude.count());
        EXPECT_EQ(pa.amplitude.mean(), pb.amplitude.mean());
        EXPECT_EQ(pa.amplitude.stddev(), pb.amplitude.stddev());
    }

    // The batched side actually used the 64-lane path for its
    // state-free sims.
    EXPECT_GT(b.simCounters().vectors(), 0u);
}

TEST(Accelerator, ActivationClampSaturatesDatapath)
{
    // A clamp window on the output layer bounds every datapath
    // value into [lo, hi]; in-window values pass through untouched
    // and clearActivationClamps() restores the exact raw forward.
    MlpTopology topo{12, 4, 3};
    Accelerator accel(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(41);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);

    std::vector<std::vector<double>> rows(40, std::vector<double>(12));
    for (auto &r : rows)
        for (double &v : r)
            v = rng.nextDouble();

    std::vector<Activations> raw;
    for (const auto &r : rows)
        raw.push_back(accel.forward(r));
    EXPECT_EQ(accel.clampHits(), 0u);

    const Fix16 lo = Fix16::fromDouble(0.25);
    const Fix16 hi = Fix16::fromDouble(0.75);
    accel.setActivationClamp(Layer::Output, lo, hi);
    EXPECT_TRUE(accel.activationClamp(Layer::Output).enabled);
    EXPECT_FALSE(accel.activationClamp(Layer::Hidden).enabled);

    uint64_t expected_hits = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
        Activations clamped = accel.forward(rows[i]);
        // Hidden layer has no clamp: bit-identical to the raw run.
        EXPECT_EQ(clamped.hidden(), raw[i].hidden());
        for (size_t n = 0; n < clamped.output().size(); ++n) {
            double v = raw[i].output()[n];
            double expect = v;
            if (v < lo.toDouble()) {
                expect = lo.toDouble();
                ++expected_hits;
            } else if (v > hi.toDouble()) {
                expect = hi.toDouble();
                ++expected_hits;
            }
            EXPECT_EQ(clamped.output()[n], expect)
                << "row " << i << " neuron " << n;
        }
    }
    // The sigmoid range [0, 1] is wider than [0.25, 0.75]: some
    // outputs must have been saturated, and each one counted.
    EXPECT_GT(expected_hits, 0u);
    EXPECT_EQ(accel.clampHits(), expected_hits);

    accel.clearActivationClamps();
    EXPECT_FALSE(accel.activationClamp(Layer::Output).enabled);
    EXPECT_EQ(accel.clampHits(), 0u);
    for (size_t i = 0; i < rows.size(); ++i) {
        Activations again = accel.forward(rows[i]);
        EXPECT_EQ(again.output(), raw[i].output());
        EXPECT_EQ(again.hidden(), raw[i].hidden());
    }
}

TEST(Accelerator, ClampedBatchMatchesScalarForward)
{
    // Clamping happens after the activation unit in both the scalar
    // and the lane-batched forward: identical windows on identical
    // arrays must agree bit for bit, hit counters included.
    MlpTopology topo{12, 4, 3};
    Accelerator a(smallArray(), topo);
    Accelerator b(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(43);
    w.initRandom(rng, 2.0);

    // Defective units make the clamp actually bite: injected faults
    // can push activations far outside the clean sigmoid range.
    Rng inj_a(47), inj_b(47);
    DefectInjector ia(a, SitePool::all());
    ia.inject(8, inj_a);
    DefectInjector ib(b, SitePool::all());
    ib.inject(8, inj_b);
    ASSERT_EQ(a.faultySites(), b.faultySites());
    a.setWeights(w);
    b.setWeights(w);

    const Fix16 lo = Fix16::fromDouble(-0.0625);
    const Fix16 hi = Fix16::fromDouble(1.0625);
    a.setActivationClamp(Layer::Hidden, lo, hi);
    a.setActivationClamp(Layer::Output, lo, hi);
    b.setActivationClamp(Layer::Hidden, lo, hi);
    b.setActivationClamp(Layer::Output, lo, hi);

    std::vector<std::vector<double>> rows(100,
                                          std::vector<double>(12));
    for (auto &r : rows)
        for (double &v : r)
            v = rng.nextDouble();
    std::vector<Activations> batch = b.forwardBatch(rows);
    ASSERT_EQ(batch.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        Activations ref = a.forward(rows[i]);
        EXPECT_EQ(ref.output(), batch[i].output()) << "row " << i;
        EXPECT_EQ(ref.hidden(), batch[i].hidden()) << "row " << i;
    }
    EXPECT_EQ(a.clampHits(), b.clampHits());
}

TEST(Accelerator, EmptyClampWindowIsRejected)
{
    MlpTopology topo{12, 4, 3};
    Accelerator accel(smallArray(), topo);
    EXPECT_EXIT(accel.setActivationClamp(Layer::Output,
                                         Fix16::fromDouble(0.5),
                                         Fix16::fromDouble(0.25)),
                testing::KilledBySignal(SIGABRT),
                "clamp window is empty");
}

TEST(UnitSite, OrderingAndDescription)
{
    UnitSite a{UnitKind::Multiplier, Layer::Hidden, 0, 1};
    UnitSite b{UnitKind::Multiplier, Layer::Hidden, 0, 2};
    EXPECT_LT(a, b);
    EXPECT_FALSE(b < a);
    EXPECT_EQ(a.describe(), "mult[hid n0 i1]");
    UnitSite c{UnitKind::Activation, Layer::Output, 3, 0};
    EXPECT_EQ(c.describe(), "act[out n3 i0]");
}

} // namespace
} // namespace dtann
