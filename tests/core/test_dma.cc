/**
 * @file
 * Tests for the DMA interface model (paper Section IV sizing).
 */

#include <gtest/gtest.h>

#include "core/dma.hh"

namespace dtann {
namespace {

TEST(HandshakeChannel, TwoDeepBuffering)
{
    HandshakeChannel<int> ch;
    EXPECT_TRUE(ch.ready());
    EXPECT_FALSE(ch.available());
    EXPECT_TRUE(ch.offer(1));
    EXPECT_TRUE(ch.offer(2));
    EXPECT_FALSE(ch.ready());
    EXPECT_FALSE(ch.offer(3)) << "third offer must be refused";
    EXPECT_EQ(ch.occupancy(), 2u);
    EXPECT_EQ(ch.accept(), 1);
    EXPECT_TRUE(ch.ready());
    EXPECT_EQ(ch.accept(), 2);
    EXPECT_FALSE(ch.available());
}

TEST(HandshakeChannel, FifoOrderUnderInterleaving)
{
    HandshakeChannel<int> ch;
    int next_in = 0, next_out = 0;
    for (int step = 0; step < 100; ++step) {
        if (step % 3 != 2) {
            if (ch.offer(next_in))
                ++next_in;
        } else if (ch.available()) {
            EXPECT_EQ(ch.accept(), next_out++);
        }
    }
    while (ch.available())
        EXPECT_EQ(ch.accept(), next_out++);
    EXPECT_EQ(next_in, next_out);
}

TEST(DmaModel, PaperBandwidthNumbers)
{
    DmaModel dma;
    // Two 64-bit links at 800 MHz: 12.8 GB/s peak (QPI-class).
    EXPECT_NEAR(dma.peakBandwidthGBs(), 12.8, 0.01);
    // 90 inputs x 16 bits per 14.92 ns row: the paper's 11.23 GB/s.
    EXPECT_NEAR(DmaModel::demandGBs(90 * 16, 14.92), 11.23, 0.02);
    // Required clock: the paper's 754 MHz.
    EXPECT_NEAR(dma.requiredClockMhz(90 * 16, 14.92), 754.0, 1.0);
}

TEST(DmaModel, TransferCycles)
{
    DmaModel dma;
    EXPECT_EQ(dma.cyclesForBits(128), 1);
    EXPECT_EQ(dma.cyclesForBits(129), 2);
    EXPECT_EQ(dma.cyclesForBits(1440), 12);
    EXPECT_NEAR(dma.transferNs(1440), 12 * 1.25, 1e-9);
}

TEST(DmaModel, ScalesWithLinks)
{
    DmaConfig cfg;
    cfg.links = 4;
    DmaModel dma(cfg);
    EXPECT_NEAR(dma.peakBandwidthGBs(), 25.6, 0.01);
    EXPECT_LT(dma.requiredClockMhz(1440, 14.92), 400.0);
}

TEST(DmaModel, RowStreamingThroughChannels)
{
    // Functional end-to-end: producer fills, consumer drains, no
    // row lost or reordered.
    HandshakeChannel<DmaRow> in_ch;
    std::vector<DmaRow> produced;
    for (int r = 0; r < 10; ++r) {
        DmaRow row(90);
        for (size_t i = 0; i < row.size(); ++i)
            row[i] = Fix16::fromDouble(r * 0.01 + i * 0.001);
        produced.push_back(row);
    }
    size_t sent = 0, received = 0;
    std::vector<DmaRow> consumed;
    while (received < produced.size()) {
        while (sent < produced.size() && in_ch.offer(produced[sent]))
            ++sent;
        if (in_ch.available()) {
            consumed.push_back(in_ch.accept());
            ++received;
        }
    }
    ASSERT_EQ(consumed.size(), produced.size());
    for (size_t r = 0; r < produced.size(); ++r)
        EXPECT_EQ(consumed[r], produced[r]);
}

} // namespace
} // namespace dtann
