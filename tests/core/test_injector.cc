/**
 * @file
 * Tests for accelerator-level defect-site sampling.
 */

#include <gtest/gtest.h>

#include "core/injector.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

TEST(SitePool, InputAndHiddenExcludesOutputLayer)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden());
    Rng rng(1);
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(inj.randomSite(rng).layer, Layer::Hidden);
}

TEST(SitePool, OutputCriticalOnlyAddersAndActivations)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::outputCritical());
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        UnitSite s = inj.randomSite(rng);
        EXPECT_EQ(s.layer, Layer::Output);
        EXPECT_TRUE(s.kind == UnitKind::AdderStage ||
                    s.kind == UnitKind::Activation);
    }
}

TEST(SitePool, EligibleUnitCounts)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    // Hidden layer: 4*13 latches + 4*13 mults + 4*12 adders + 4 act.
    DefectInjector hid(accel, SitePool::inputAndHidden());
    EXPECT_EQ(hid.eligibleUnits(), 52u + 52u + 48u + 4u);
    // Output critical: 3*4 adders + 3 activations.
    DefectInjector out(accel, SitePool::outputCritical());
    EXPECT_EQ(out.eligibleUnits(), 12u + 3u);
    DefectInjector all(accel, SitePool::all());
    EXPECT_EQ(all.eligibleUnits(),
              2u * 67u + 60u + 7u);
}

TEST(SiteWeighting, TransistorWeightingFavorsMultipliers)
{
    // Multipliers are ~30x larger than 16-bit latch registers, so
    // transistor weighting must pick them far more often.
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden(),
                       SiteWeighting::Transistor);
    Rng rng(3);
    int mult = 0, latch = 0;
    for (int i = 0; i < 2000; ++i) {
        UnitSite s = inj.randomSite(rng);
        mult += s.kind == UnitKind::Multiplier;
        latch += s.kind == UnitKind::WeightLatch;
    }
    EXPECT_GT(mult, 10 * latch);
}

TEST(SiteWeighting, UniformWeightingBalancesKinds)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden(),
                       SiteWeighting::Uniform);
    Rng rng(4);
    int mult = 0, latch = 0;
    for (int i = 0; i < 2000; ++i) {
        UnitSite s = inj.randomSite(rng);
        mult += s.kind == UnitKind::Multiplier;
        latch += s.kind == UnitKind::WeightLatch;
    }
    // Same instance counts: ratio near 1.
    EXPECT_LT(std::abs(mult - latch), 300);
}

TEST(DefectInjector, InjectInstallsFaults)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden());
    Rng rng(5);
    auto records = inj.inject(6, rng);
    EXPECT_EQ(records.size(), 6u);
    EXPECT_FALSE(accel.faultySites().empty());
    EXPECT_LE(accel.faultySites().size(), 6u);
    for (const auto &r : records)
        EXPECT_NE(r.what.find("["), std::string::npos)
            << "record should name the site: " << r.what;
}

TEST(DefectInjector, DeterministicWithSeed)
{
    Accelerator a1(smallArray(), {12, 4, 3});
    Accelerator a2(smallArray(), {12, 4, 3});
    DefectInjector i1(a1, SitePool::inputAndHidden());
    DefectInjector i2(a2, SitePool::inputAndHidden());
    Rng r1(9), r2(9);
    auto rec1 = i1.inject(5, r1);
    auto rec2 = i2.inject(5, r2);
    ASSERT_EQ(rec1.size(), rec2.size());
    for (size_t i = 0; i < rec1.size(); ++i)
        EXPECT_EQ(rec1[i].what, rec2[i].what);
}

} // namespace
} // namespace dtann
