/**
 * @file
 * Tests for accelerator-level defect-site sampling.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/accelerator.hh"
#include "core/injector.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

TEST(SitePool, InputAndHiddenExcludesOutputLayer)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden());
    Rng rng(1);
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(inj.randomSite(rng).layer, Layer::Hidden);
}

TEST(SitePool, OutputCriticalOnlyAddersAndActivations)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::outputCritical());
    Rng rng(2);
    for (int i = 0; i < 300; ++i) {
        UnitSite s = inj.randomSite(rng);
        EXPECT_EQ(s.layer, Layer::Output);
        EXPECT_TRUE(s.kind == UnitKind::AdderStage ||
                    s.kind == UnitKind::Activation);
    }
}

TEST(SitePool, OutputCriticalPropertyUnderBothWeightings)
{
    // Property: no matter how sites are weighted, the Fig 11 pool
    // must only ever draw output-layer adder stages and activation
    // functions — checked exhaustively over the enumerated
    // population and statistically over random draws.
    Accelerator accel(smallArray(), {12, 4, 3});
    for (SiteWeighting w :
         {SiteWeighting::Uniform, SiteWeighting::Transistor}) {
        DefectInjector inj(accel, SitePool::outputCritical(), w);
        for (const UnitSite &s : inj.eligibleSites()) {
            EXPECT_EQ(s.layer, Layer::Output) << s.describe();
            EXPECT_TRUE(s.kind == UnitKind::AdderStage ||
                        s.kind == UnitKind::Activation)
                << s.describe();
        }
        Rng rng(static_cast<uint64_t>(w) + 17);
        for (int i = 0; i < 500; ++i) {
            UnitSite s = inj.randomSite(rng);
            EXPECT_EQ(s.layer, Layer::Output);
            EXPECT_TRUE(s.kind == UnitKind::AdderStage ||
                        s.kind == UnitKind::Activation)
                << s.describe();
        }
    }
}

TEST(SitePool, EnumerateSitesMatchesInjectorPopulation)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::all());
    EXPECT_EQ(enumerateSites(smallArray(), SitePool::all()),
              inj.eligibleSites());
}

TEST(SitePool, EligibleUnitCounts)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    // Hidden layer: 4*13 latches + 4*13 mults + 4*12 adders + 4 act.
    DefectInjector hid(accel, SitePool::inputAndHidden());
    EXPECT_EQ(hid.eligibleUnits(), 52u + 52u + 48u + 4u);
    // Output critical: 3*4 adders + 3 activations.
    DefectInjector out(accel, SitePool::outputCritical());
    EXPECT_EQ(out.eligibleUnits(), 12u + 3u);
    DefectInjector all(accel, SitePool::all());
    EXPECT_EQ(all.eligibleUnits(),
              2u * 67u + 60u + 7u);
}

TEST(SiteWeighting, TransistorWeightingFavorsMultipliers)
{
    // Multipliers are ~30x larger than 16-bit latch registers, so
    // transistor weighting must pick them far more often.
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden(),
                       SiteWeighting::Transistor);
    Rng rng(3);
    int mult = 0, latch = 0;
    for (int i = 0; i < 2000; ++i) {
        UnitSite s = inj.randomSite(rng);
        mult += s.kind == UnitKind::Multiplier;
        latch += s.kind == UnitKind::WeightLatch;
    }
    EXPECT_GT(mult, 10 * latch);
}

TEST(SiteWeighting, UniformWeightingBalancesKinds)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden(),
                       SiteWeighting::Uniform);
    Rng rng(4);
    int mult = 0, latch = 0;
    for (int i = 0; i < 2000; ++i) {
        UnitSite s = inj.randomSite(rng);
        mult += s.kind == UnitKind::Multiplier;
        latch += s.kind == UnitKind::WeightLatch;
    }
    // Same instance counts: ratio near 1.
    EXPECT_LT(std::abs(mult - latch), 300);
}

TEST(SiteWeighting, TransistorDrawsMatchTransistorCounts)
{
    // The cumulative-weight table must reproduce the per-unit
    // transistor counts: with N draws, each unit kind's frequency
    // should match its share of the pool's total transistor count
    // within statistical tolerance.
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden(),
                       SiteWeighting::Transistor);

    // Instance counts in the hidden layer of the 12-4-3 array.
    const double n_latch = 4 * 13, n_mult = 4 * 13;
    const double n_add = 4 * 12, n_act = 4;
    const double w_latch =
        n_latch * accel.latchNetlist().transistorCount();
    const double w_mult =
        n_mult * accel.multiplierNetlist().transistorCount();
    const double w_add = n_add * accel.adderNetlist().transistorCount();
    const double w_act =
        n_act * accel.activationNetlist().transistorCount();
    const double total = w_latch + w_mult + w_add + w_act;

    const int draws = 20000;
    Rng rng(11);
    int got[4] = {0, 0, 0, 0};
    for (int i = 0; i < draws; ++i)
        ++got[static_cast<int>(inj.randomSite(rng).kind)];

    const double expect[4] = {w_latch / total, w_mult / total,
                              w_add / total, w_act / total};
    for (int k = 0; k < 4; ++k) {
        double freq = static_cast<double>(got[k]) / draws;
        // ~5 sigma of a binomial with p = expect[k].
        double sigma =
            std::sqrt(expect[k] * (1 - expect[k]) / draws);
        EXPECT_NEAR(freq, expect[k], 5 * sigma + 1e-9)
            << "unit kind " << k;
    }
}

TEST(SiteWeighting, UniformAndTransistorDrawDifferentDistributions)
{
    // Under uniform weighting every instance is equally likely, so
    // the adder-stage share equals its instance share; transistor
    // weighting must shift mass decisively towards multipliers.
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector uni(accel, SitePool::inputAndHidden(),
                       SiteWeighting::Uniform);
    DefectInjector wt(accel, SitePool::inputAndHidden(),
                      SiteWeighting::Transistor);

    const int draws = 20000;
    Rng r1(12), r2(12);
    int uni_mult = 0, wt_mult = 0;
    for (int i = 0; i < draws; ++i) {
        uni_mult += uni.randomSite(r1).kind == UnitKind::Multiplier;
        wt_mult += wt.randomSite(r2).kind == UnitKind::Multiplier;
    }
    // Instance share of multipliers: 52 of 156 eligible units.
    double uni_freq = static_cast<double>(uni_mult) / draws;
    EXPECT_NEAR(uni_freq, 52.0 / 156.0, 0.02);
    // Transistor share dominates (16x16 multiplier >> latch/adder).
    double wt_freq = static_cast<double>(wt_mult) / draws;
    EXPECT_GT(wt_freq, 0.80);
    EXPECT_GT(wt_freq, uni_freq + 0.3);
}

TEST(DefectInjector, InjectInstallsFaults)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    DefectInjector inj(accel, SitePool::inputAndHidden());
    Rng rng(5);
    auto records = inj.inject(6, rng);
    EXPECT_EQ(records.size(), 6u);
    EXPECT_FALSE(accel.faultySites().empty());
    EXPECT_LE(accel.faultySites().size(), 6u);
    for (const auto &r : records)
        EXPECT_NE(r.what.find("["), std::string::npos)
            << "record should name the site: " << r.what;
}

TEST(DefectInjector, DeterministicWithSeed)
{
    Accelerator a1(smallArray(), {12, 4, 3});
    Accelerator a2(smallArray(), {12, 4, 3});
    DefectInjector i1(a1, SitePool::inputAndHidden());
    DefectInjector i2(a2, SitePool::inputAndHidden());
    Rng r1(9), r2(9);
    auto rec1 = i1.inject(5, r1);
    auto rec2 = i2.inject(5, r2);
    ASSERT_EQ(rec1.size(), rec2.size());
    for (size_t i = 0; i < rec1.size(); ++i)
        EXPECT_EQ(rec1[i].what, rec2[i].what);
}

} // namespace
} // namespace dtann
