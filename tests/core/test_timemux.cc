/**
 * @file
 * Tests for partial time-multiplexing of oversized networks.
 */

#include <gtest/gtest.h>

#include "ann/fixed_mlp.hh"
#include "core/injector.hh"
#include "core/timemux.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

/** Random weights for a topology. */
MlpWeights
randomWeights(MlpTopology topo, uint64_t seed, double range = 1.5)
{
    MlpWeights w(topo);
    Rng rng(seed);
    w.initRandom(rng, range);
    return w;
}

TEST(TimeMux, FittingNetworkMatchesFixedMlpBitExact)
{
    MlpTopology topo{10, 4, 3};
    Accelerator accel(smallArray(), {10, 4, 3});
    TimeMuxedMlp mux(accel, topo);
    FixedMlp ref(topo);
    MlpWeights w = randomWeights(topo, 5);
    mux.setWeights(w);
    ref.setWeights(w);
    Rng rng(6);
    for (int t = 0; t < 30; ++t) {
        std::vector<double> in(10);
        for (double &v : in)
            v = rng.nextDouble();
        EXPECT_EQ(mux.forward(in).output(), ref.forward(in).output());
    }
}

TEST(TimeMux, MoreHiddenNeuronsThanPhysical)
{
    // 9 hidden neurons on 4 physical ones: 3 batches.
    MlpTopology topo{10, 9, 3};
    Accelerator accel(smallArray(), {10, 4, 3});
    TimeMuxedMlp mux(accel, topo);
    FixedMlp ref(topo);
    MlpWeights w = randomWeights(topo, 7);
    mux.setWeights(w);
    ref.setWeights(w);
    Rng rng(8);
    for (int t = 0; t < 20; ++t) {
        std::vector<double> in(10);
        for (double &v : in)
            v = rng.nextDouble();
        EXPECT_EQ(mux.forward(in).output(), ref.forward(in).output());
        EXPECT_EQ(mux.forward(in).hidden(), ref.forward(in).hidden());
    }
}

TEST(TimeMux, OversizedFaninUsesChunkAccumulation)
{
    // 30 inputs on a 12-input array: 3 chunks + activation pass.
    MlpTopology topo{30, 4, 2};
    Accelerator accel(smallArray(), {12, 4, 3});
    TimeMuxedMlp mux(accel, topo);
    FixedMlp ref(topo);
    MlpWeights w = randomWeights(topo, 9, 0.8);
    mux.setWeights(w);
    ref.setWeights(w);
    Rng rng(10);
    for (int t = 0; t < 20; ++t) {
        std::vector<double> in(30);
        for (double &v : in)
            v = rng.nextDouble();
        EXPECT_EQ(mux.forward(in).output(), ref.forward(in).output());
    }
}

TEST(TimeMux, PassCounting)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    // Fits entirely: hidden 1 batch x 1 pass + output 1 x 1.
    TimeMuxedMlp fit(accel, {12, 4, 3});
    EXPECT_EQ(fit.passesPerRow(), 2u);
    // 9 hidden on 4 physical: 3 batches; outputs 3: 1 batch.
    TimeMuxedMlp tall(accel, {12, 9, 3});
    EXPECT_EQ(tall.passesPerRow(), 3u + 1u);
    // 30 inputs: 3 chunks + 1 activation pass per batch.
    TimeMuxedMlp wide(accel, {30, 4, 2});
    EXPECT_EQ(wide.passesPerRow(), 4u + 1u);
}

TEST(TimeMux, MuxFactorGrowsWithNetwork)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    TimeMuxedMlp small(accel, {12, 4, 3});
    TimeMuxedMlp large(accel, {12, 16, 8});
    EXPECT_LT(small.muxFactor(), large.muxFactor());
    EXPECT_EQ(large.muxFactor(), 6); // (16+8)/4
}

TEST(TimeMux, DefectAffectsManyLogicalNeurons)
{
    // The paper's defect-multiplication effect: one faulty
    // physical neuron corrupts every logical neuron mapped to it.
    MlpTopology topo{10, 12, 3};
    Accelerator accel(smallArray(), {10, 4, 3});
    TimeMuxedMlp mux(accel, topo);
    FixedMlp ref(topo);
    MlpWeights w = randomWeights(topo, 11);
    mux.setWeights(w);
    ref.setWeights(w);

    Rng rng(12);
    // A stuck activation on physical hidden neuron 1.
    UnitSite site{UnitKind::Activation, Layer::Hidden, 1, 0};
    accel.injectDefects(site, 25, rng);

    std::vector<double> in(10, 0.7);
    Activations faulty = mux.forward(in);
    Activations clean = ref.forward(in);
    // Logical hidden neurons 1, 5, 9 all ride physical neuron 1.
    int corrupted = 0;
    for (int j : {1, 5, 9})
        if (faulty.hidden()[static_cast<size_t>(j)] !=
            clean.hidden()[static_cast<size_t>(j)])
            ++corrupted;
    // A heavy activation fault corrupts most mapped neurons.
    EXPECT_GE(corrupted, 2) << "defect multiplication not observed";
}

TEST(TimeMux, WeightReloadTrafficScalesWithPasses)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    TimeMuxedMlp small(accel, {12, 4, 3});
    TimeMuxedMlp large(accel, {30, 16, 8});
    EXPECT_LT(small.weightWordsPerRow(), large.weightWordsPerRow());
}

} // namespace
} // namespace dtann
