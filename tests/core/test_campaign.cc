/**
 * @file
 * Smoke tests of the figure campaigns at tiny scale.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/campaign.hh"

namespace dtann {
namespace {

Fig5Config
fig5Config(Fig5Operator op, int defects, int repetitions, uint64_t seed)
{
    Fig5Config cfg;
    cfg.op = op;
    cfg.defects = defects;
    cfg.repetitions = repetitions;
    cfg.seed = seed;
    return cfg;
}

TEST(Fig5, CleanDistributionIsExactConvolution)
{
    Fig5Result r =
        runFig5(fig5Config(Fig5Operator::Adder4, 1, 2, 1));
    // Each repetition covers all 256 pairs: value v occurs
    // #\{(a,b): a+b=v\} times per repetition.
    EXPECT_EQ(r.none.total(), 512u);
    EXPECT_EQ(r.none.at(0), 2u);   // only 0+0
    EXPECT_EQ(r.none.at(15), 32u); // 16 pairs x 2 reps
    EXPECT_EQ(r.none.at(30), 2u);  // only 15+15
}

TEST(Fig5, OneDefectBarelyMovesTransistorDistribution)
{
    // Paper: "For 1 defect, the behavior of the 4-bit adder is
    // barely affected."
    Fig5Result r =
        runFig5(fig5Config(Fig5Operator::Adder4, 1, 40, 2));
    EXPECT_LT(r.trans.totalVariation(r.none), 0.10);
}

TEST(Fig5, TwentyDefectsDivergeAndGateModelIsWorse)
{
    // Paper: at 20 defects both models diverge from the clean
    // distribution, and the transistor-level profile stays closer
    // to the error-free profile than the gate-level one.
    Fig5Result r =
        runFig5(fig5Config(Fig5Operator::Adder4, 20, 60, 3));
    double tv_trans = r.trans.totalVariation(r.none);
    double tv_gate = r.gate.totalVariation(r.none);
    EXPECT_GT(tv_trans, 0.05);
    EXPECT_GT(tv_gate, tv_trans)
        << "gate-level faults should distort more";
}

TEST(Fig5, MultiplierConfigurationRuns)
{
    Fig5Result r =
        runFig5(fig5Config(Fig5Operator::Multiplier4, 20, 10, 4));
    EXPECT_EQ(r.none.total(), 2560u);
    EXPECT_EQ(r.none.at(225), 10u); // 15*15 only
    EXPECT_GT(r.trans.total(), 0u);
    EXPECT_GT(r.gate.total(), 0u);
}

TEST(Fig5, BatchAndConePathsAreBitIdenticalToScalar)
{
    // The campaign's 64-lane / cone-pruned hot path must reproduce
    // the scalar relaxation results exactly: force the slow paths
    // via the env knobs and compare whole histograms.
    Fig5Config cfg = fig5Config(Fig5Operator::Adder4, 3, 30, 9);
    Fig5Result fast = runFig5(cfg);

    setenv("DTANN_NO_BATCH", "1", 1);
    setenv("DTANN_NO_CONE", "1", 1);
    Fig5Result slow = runFig5(cfg);
    unsetenv("DTANN_NO_BATCH");
    unsetenv("DTANN_NO_CONE");

    EXPECT_EQ(fast.none.totalVariation(slow.none), 0.0);
    EXPECT_EQ(fast.trans.totalVariation(slow.trans), 0.0);
    EXPECT_EQ(fast.gate.totalVariation(slow.gate), 0.0);
    // The forced run did all its work on the scalar path.
    EXPECT_EQ(slow.sim.batchVectors, 0u);
    EXPECT_GT(fast.sim.batchVectors, 0u);
}

TEST(Fig5, ResultsBitIdenticalAcrossLaneWidths)
{
    // The DTANN_LANES plane-width knob (DESIGN.md §9) is a pure
    // throughput control: whole campaign histograms must not move
    // by a single count across 64/256/512/auto.
    Fig5Config cfg = fig5Config(Fig5Operator::Adder4, 3, 30, 9);
    auto runAt = [&](const char *lanes) {
        if (lanes)
            setenv("DTANN_LANES", lanes, 1);
        else
            unsetenv("DTANN_LANES");
        Fig5Result r = runFig5(cfg);
        unsetenv("DTANN_LANES");
        return r;
    };
    Fig5Result oracle = runAt("64");
    for (const char *lanes :
         {"256", "512", static_cast<const char *>(nullptr)}) {
        Fig5Result r = runAt(lanes);
        EXPECT_EQ(oracle.none.totalVariation(r.none), 0.0);
        EXPECT_EQ(oracle.trans.totalVariation(r.trans), 0.0);
        EXPECT_EQ(oracle.gate.totalVariation(r.gate), 0.0);
    }
}

TEST(Fig10, TinyCampaignShowsToleranceShape)
{
    Fig10Config cfg;
    cfg.tasks = {"iris"};
    cfg.defectCounts = {0, 4};
    cfg.repetitions = 2;
    cfg.folds = 2;
    cfg.rows = 90;
    cfg.epochScale = 0.4;
    cfg.retrainScale = 0.3;
    cfg.seed = 7;
    cfg.array.inputs = 16;
    cfg.array.hidden = 8;
    cfg.array.outputs = 3;

    auto curves = runFig10(cfg);
    ASSERT_EQ(curves.size(), 1u);
    const Fig10Curve &c = curves[0];
    EXPECT_EQ(c.task, "iris");
    ASSERT_EQ(c.points.size(), 2u);
    EXPECT_EQ(c.points[0].defects, 0);
    // Clean baseline learns the task.
    EXPECT_GT(c.points[0].accuracy, 0.7);
    // A handful of defects after retraining must not collapse the
    // network (the paper's central claim).
    EXPECT_GT(c.points[1].accuracy, 0.5);
}

TEST(Fig11, TinyCampaignProducesAmplitudes)
{
    Fig11Config cfg;
    cfg.tasks = {"iris"};
    cfg.repetitions = 3;
    cfg.folds = 2;
    cfg.rows = 90;
    cfg.epochScale = 0.4;
    cfg.retrainScale = 0.3;
    cfg.seed = 9;
    cfg.array.inputs = 16;
    cfg.array.hidden = 8;
    cfg.array.outputs = 3;

    auto curves = runFig11(cfg);
    ASSERT_EQ(curves.size(), 1u);
    const Fig11Curve &c = curves[0];
    EXPECT_EQ(c.samples.size(), 3u);
    for (const auto &s : c.samples) {
        EXPECT_GE(s.accuracy, 0.0);
        EXPECT_LE(s.accuracy, 1.0);
        EXPECT_FALSE(s.site.empty());
    }
    EXPECT_FALSE(c.binAccuracy.empty());
}

TEST(HardwareHyper, CapsHiddenAtPhysical)
{
    AcceleratorConfig a; // 10 hidden
    Hyper h = hardwareHyper(uciTask("breast"), a, 1.0); // paper: 14
    EXPECT_EQ(h.hidden, 10);
    Hyper h2 = hardwareHyper(uciTask("wine"), a, 1.0); // paper: 4
    EXPECT_EQ(h2.hidden, 4);
}

TEST(SelectTasks, EmptyMeansAllTen)
{
    EXPECT_EQ(selectTasks({}).size(), 10u);
    auto some = selectTasks({"iris", "wine"});
    ASSERT_EQ(some.size(), 2u);
    EXPECT_EQ(some[0].name, "iris");
    EXPECT_EQ(some[1].name, "wine");
}

TEST(RetrainHyper, ScalesEpochsWithFloorOfOne)
{
    Hyper h;
    h.epochs = 100;
    EXPECT_EQ(retrainHyper(h, 0.25).epochs, 25);
    EXPECT_EQ(retrainHyper(h, 0.0001).epochs, 1);
    // Only the epoch budget changes.
    EXPECT_EQ(retrainHyper(h, 0.25).learningRate, h.learningRate);
    EXPECT_EQ(retrainHyper(h, 0.25).hidden, h.hidden);
}

TEST(HardwareHyper, ScalesEpochs)
{
    AcceleratorConfig a;
    Hyper h = hardwareHyper(uciTask("robot"), a, 0.1); // 1600 -> 160
    EXPECT_EQ(h.epochs, 160);
    Hyper h1 = hardwareHyper(uciTask("iris"), a, 0.001);
    EXPECT_GE(h1.epochs, 1);
}

} // namespace
} // namespace dtann
