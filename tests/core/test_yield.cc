/**
 * @file
 * Tests for the effective-yield analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/yield.hh"

namespace dtann {
namespace {

Fig10Curve
flatCurve(double accuracy)
{
    Fig10Curve c;
    c.task = "flat";
    for (int d : {0, 9, 27})
        c.points.push_back({d, accuracy, 0.0});
    return c;
}

Fig10Curve
cliffCurve()
{
    // 0.95 until 12 defects, then a linear fall to 0.2 at 24.
    Fig10Curve c;
    c.task = "cliff";
    c.points.push_back({0, 0.95, 0.0});
    c.points.push_back({12, 0.95, 0.0});
    c.points.push_back({24, 0.20, 0.0});
    return c;
}

TEST(Poisson, PmfBasics)
{
    EXPECT_DOUBLE_EQ(poissonPmf(0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(poissonPmf(3, 0.0), 0.0);
    EXPECT_NEAR(poissonPmf(0, 2.0), std::exp(-2.0), 1e-12);
    EXPECT_NEAR(poissonPmf(1, 2.0), 2.0 * std::exp(-2.0), 1e-12);
    double sum = 0.0;
    for (int k = 0; k < 60; ++k)
        sum += poissonPmf(k, 5.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Interpolate, EndpointsAndMidpoints)
{
    Fig10Curve c = cliffCurve();
    EXPECT_DOUBLE_EQ(interpolateAccuracy(c, 0), 0.95);
    EXPECT_DOUBLE_EQ(interpolateAccuracy(c, 6), 0.95);
    EXPECT_NEAR(interpolateAccuracy(c, 18), (0.95 + 0.20) / 2, 1e-12);
    // Clamped beyond measurements.
    EXPECT_DOUBLE_EQ(interpolateAccuracy(c, 100), 0.20);
}

TEST(Yield, ZeroDensityIsPerfect)
{
    YieldPoint y = effectiveYield(cliffCurve(), 9.02, 0.0, 0.9);
    EXPECT_DOUBLE_EQ(y.classicYield, 1.0);
    EXPECT_DOUBLE_EQ(y.effectiveYield, 1.0);
    EXPECT_NEAR(y.expectedAccuracy, 0.95, 1e-12);
}

TEST(Yield, ClassicYieldIsPoissonZero)
{
    // 50 defects/cm^2 on 9.02 mm^2: lambda = 4.51.
    YieldPoint y = effectiveYield(flatCurve(0.9), 9.02, 50.0, 0.5);
    EXPECT_NEAR(y.meanDefects, 4.51, 1e-9);
    EXPECT_NEAR(y.classicYield, std::exp(-4.51), 1e-9);
}

TEST(Yield, TolerantCurveBeatsClassicYield)
{
    // The paper's motivation in one assert: at realistic defect
    // densities a defect-tolerant array yields far more working
    // parts than a defect-intolerant circuit of the same area.
    YieldPoint y = effectiveYield(cliffCurve(), 9.02, 50.0, 0.9);
    EXPECT_GT(y.effectiveYield, 5 * y.classicYield);
    EXPECT_GT(y.effectiveYield, 0.95); // cliff is at 12 >> lambda
}

TEST(Yield, HighDensityDegrades)
{
    YieldPoint lo = effectiveYield(cliffCurve(), 9.02, 20.0, 0.9);
    YieldPoint hi = effectiveYield(cliffCurve(), 9.02, 300.0, 0.9);
    EXPECT_GT(lo.effectiveYield, hi.effectiveYield);
    EXPECT_GT(lo.expectedAccuracy, hi.expectedAccuracy);
}

TEST(Yield, FlatIntolerantCurveMatchesClassic)
{
    // A curve that fails at the first defect reduces to classic
    // yield.
    Fig10Curve c;
    c.task = "fragile";
    c.points.push_back({0, 0.95, 0.0});
    c.points.push_back({1, 0.10, 0.0});
    YieldPoint y = effectiveYield(c, 9.02, 80.0, 0.9);
    EXPECT_NEAR(y.effectiveYield, y.classicYield, 1e-9);
}

} // namespace
} // namespace dtann
