/**
 * @file
 * Tests for spare (redundant) output neurons.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>

#include "ann/trainer.hh"
#include "core/spare.hh"
#include "data/synth_uci.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 6; // room for 3 logical outputs + 3 spares
    return cfg;
}

TEST(Spare, TopologyDoubling)
{
    MlpTopology logical{12, 4, 3};
    MlpTopology phys = sparedTopology(logical);
    EXPECT_EQ(phys.outputs, 6);
    EXPECT_EQ(phys.inputs, 12);
    EXPECT_EQ(phys.hidden, 4);
}

TEST(Spare, CleanForwardEqualsUnsparedNetwork)
{
    MlpTopology logical{12, 4, 3};
    Accelerator spared_accel(smallArray(), sparedTopology(logical));
    SparedOutputMlp spared(spared_accel, logical);
    Accelerator plain_accel(smallArray(), logical);

    MlpWeights w(logical);
    Rng rng(3);
    w.initRandom(rng, 1.5);
    spared.setWeights(w);
    plain_accel.setWeights(w);
    for (int t = 0; t < 30; ++t) {
        std::vector<double> in(12);
        for (double &v : in)
            v = rng.nextDouble();
        Activations a = spared.forward(in);
        Activations b = plain_accel.forward(in);
        ASSERT_EQ(a.output().size(), b.output().size());
        for (size_t k = 0; k < a.output().size(); ++k)
            EXPECT_DOUBLE_EQ(a.output()[k], b.output()[k]);
    }
}

TEST(Spare, HalvesImpactOfOutputActivationFault)
{
    // Stuck activation on physical output 0 (a primary copy): the
    // averager limits the deviation to half, while the unspared
    // network takes it in full.
    MlpTopology logical{12, 4, 3};
    Accelerator spared_accel(smallArray(), sparedTopology(logical));
    SparedOutputMlp spared(spared_accel, logical);
    Accelerator plain_accel(smallArray(), logical);

    MlpWeights w(logical);
    Rng rng(5);
    w.initRandom(rng, 1.5);
    spared.setWeights(w);
    plain_accel.setWeights(w);

    // Same severe defect (saturated with faults) at each array's
    // output-activation 0.
    UnitSite site{UnitKind::Activation, Layer::Output, 0, 0};
    Rng inj1(99), inj2(99);
    spared_accel.injectDefects(site, 30, inj1);
    plain_accel.injectDefects(site, 30, inj2);

    double max_dev_spared = 0.0, max_dev_plain = 0.0;
    FloatMlp ref(logical); // reference uses exact sigmoid: compare
                           // faulty vs its own clean twin instead
    (void)ref;
    Accelerator clean_accel(smallArray(), logical);
    clean_accel.setWeights(w);
    for (int t = 0; t < 60; ++t) {
        std::vector<double> in(12);
        for (double &v : in)
            v = rng.nextDouble();
        double clean = clean_accel.forward(in).output()[0];
        max_dev_spared = std::max(
            max_dev_spared, std::abs(spared.forward(in).output()[0] - clean));
        max_dev_plain = std::max(
            max_dev_plain, std::abs(plain_accel.forward(in).output()[0] -
                                    clean));
    }
    EXPECT_GT(max_dev_plain, 0.0) << "fault never excited";
    EXPECT_LE(max_dev_spared, 0.5 * max_dev_plain + 1e-9);
}

TEST(Spare, MedianOfThreeRejectsSingleBrokenCopyExactly)
{
    // With three copies, the median output is bit-identical to the
    // clean network no matter how badly ONE copy misbehaves.
    AcceleratorConfig cfg = smallArray();
    cfg.outputs = 9; // 3 logical x 3 copies
    MlpTopology logical{12, 4, 3};
    Accelerator accel(cfg, sparedTopology(logical, 3));
    SparedOutputMlp spared(accel, logical, 3);
    Accelerator clean(cfg, logical);

    MlpWeights w(logical);
    Rng rng(7);
    w.initRandom(rng, 1.5);
    spared.setWeights(w);
    clean.setWeights(w);

    // Wreck the primary copy of logical output 1.
    UnitSite site{UnitKind::Activation, Layer::Output, 1, 0};
    Rng inj(31);
    accel.injectDefects(site, 30, inj);

    for (int t = 0; t < 60; ++t) {
        std::vector<double> in(12);
        for (double &v : in)
            v = rng.nextDouble();
        Activations a = spared.forward(in);
        Activations b = clean.forward(in);
        for (size_t k = 0; k < a.output().size(); ++k)
            EXPECT_DOUBLE_EQ(a.output()[k], b.output()[k])
                << "output " << k << " row " << t;
    }
}

TEST(Spare, RequiresEnoughPhysicalOutputs)
{
    AcceleratorConfig cfg = smallArray();
    cfg.outputs = 4; // too few for 3 + 3
    MlpTopology logical{12, 4, 3};
    EXPECT_EXIT(
        {
            Accelerator accel(cfg, sparedTopology(logical));
            SparedOutputMlp spared(accel, logical);
        },
        ::testing::KilledBySignal(SIGABRT), "fit");
}

TEST(Spare, TrainableEndToEnd)
{
    Rng gen(17);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 120);
    AcceleratorConfig cfg;
    cfg.inputs = 16;
    cfg.hidden = 6;
    cfg.outputs = 6;
    MlpTopology logical{4, 6, 3};
    Accelerator accel(cfg, sparedTopology(logical));
    SparedOutputMlp spared(accel, logical);
    Trainer trainer({6, 60, 0.2, 0.1});
    Rng rng(5);
    trainer.train(spared, ds, rng);
    EXPECT_GT(evalAccuracy(spared, ds), 0.8);
}

} // namespace
} // namespace dtann
