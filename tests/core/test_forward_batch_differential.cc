/**
 * @file
 * Differential suite for the batched ForwardModel overrides: for
 * every accelerator-backed wrapper (time-muxed, spared outputs,
 * remapped outputs, deep stacks) forwardBatch() must be
 * bit-identical per row to scalar forward(), with defects injected
 * and under the DTANN_NO_BATCH / DTANN_NO_CONE escape hatches.
 *
 * Faulty operators can be stateful (latch faults), which makes
 * comparing forward() then forwardBatch() on one instance invalid —
 * each test builds twin accelerators with identically-seeded
 * injections and runs one path on each.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "ann/deep.hh"
#include "core/deep_mux.hh"
#include "core/injector.hh"
#include "core/spare.hh"
#include "core/timemux.hh"
#include "mitigate/remap.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

std::vector<std::vector<double>>
randomRows(size_t n, int width, Rng &rng)
{
    std::vector<std::vector<double>> rows(n);
    for (auto &row : rows) {
        row.resize(static_cast<size_t>(width));
        for (double &v : row)
            v = rng.nextDouble();
    }
    return rows;
}

/** Per-row scalar sweep (the reference semantics). */
std::vector<Activations>
scalarSweep(ForwardModel &model,
            const std::vector<std::vector<double>> &rows)
{
    std::vector<Activations> acts;
    acts.reserve(rows.size());
    for (const auto &row : rows)
        acts.push_back(model.forward(row));
    return acts;
}

void
expectBitIdentical(const std::vector<Activations> &want,
                   const std::vector<Activations> &got)
{
    ASSERT_EQ(want.size(), got.size());
    for (size_t r = 0; r < want.size(); ++r)
        EXPECT_EQ(want[r].layers, got[r].layers) << "row " << r;
}

TEST(ForwardBatchDifferential, TimeMuxedMatchesScalar)
{
    // 70 rows crosses the 64-row lane-group boundary of the hoisted
    // batch engine; several seeds exercise both the pure (hoisted)
    // and stateful-fallback sides of the batchPure() decision.
    MlpTopology logical{12, 12, 3}; // mux factor (12+3)/4 = 4
    int pure_runs = 0, fallback_runs = 0;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        MlpWeights w(logical);
        Rng wr(seed * 11);
        w.initRandom(wr, 1.2);

        Accelerator scalar_accel(smallArray(), {12, 4, 3});
        TimeMuxedMlp scalar_mux(scalar_accel, logical);
        scalar_mux.setWeights(w);
        Accelerator batch_accel(smallArray(), {12, 4, 3});
        TimeMuxedMlp batch_mux(batch_accel, logical);
        batch_mux.setWeights(w);

        DefectInjector scalar_inj(scalar_accel,
                                  SitePool::inputAndHidden());
        DefectInjector batch_inj(batch_accel,
                                 SitePool::inputAndHidden());
        Rng ir_a(seed * 13), ir_b(seed * 13);
        scalar_inj.inject(4, ir_a);
        batch_inj.inject(4, ir_b);
        ASSERT_EQ(scalar_accel.batchPure(), batch_accel.batchPure());
        (batch_accel.batchPure() ? pure_runs : fallback_runs)++;

        Rng rr(seed * 17);
        auto rows = randomRows(70, 12, rr);
        auto want = scalarSweep(scalar_mux, rows);
        auto got = batch_mux.forwardBatch(rows);
        expectBitIdentical(want, got);
        // Same total faulty-operator work, only reclassified
        // between the scalar and batch paths.
        EXPECT_EQ(scalar_mux.simCounters().vectors(),
                  batch_mux.simCounters().vectors());
    }
    EXPECT_GT(pure_runs, 0) << "no seed exercised the hoisted path";
    EXPECT_GT(fallback_runs, 0)
        << "no seed exercised the stateful fallback";
}

TEST(ForwardBatchDifferential, SparedOutputsMatchScalar)
{
    MlpTopology logical{10, 4, 2};
    AcceleratorConfig cfg = smallArray();
    cfg.outputs = 6; // 3 copies of each logical output
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        MlpWeights w(logical);
        Rng wr(seed * 19);
        w.initRandom(wr, 1.2);

        Accelerator scalar_accel(cfg, sparedTopology(logical, 3));
        SparedOutputMlp scalar_model(scalar_accel, logical, 3);
        scalar_model.setWeights(w);
        Accelerator batch_accel(cfg, sparedTopology(logical, 3));
        SparedOutputMlp batch_model(batch_accel, logical, 3);
        batch_model.setWeights(w);

        DefectInjector scalar_inj(scalar_accel,
                                  SitePool::outputCritical());
        DefectInjector batch_inj(batch_accel,
                                 SitePool::outputCritical());
        Rng ir_a(seed * 23), ir_b(seed * 23);
        scalar_inj.inject(3, ir_a);
        batch_inj.inject(3, ir_b);

        Rng rr(seed * 29);
        auto rows = randomRows(70, 10, rr);
        expectBitIdentical(scalarSweep(scalar_model, rows),
                           batch_model.forwardBatch(rows));
        EXPECT_EQ(scalar_model.simCounters().vectors(),
                  batch_model.simCounters().vectors());
    }
}

TEST(ForwardBatchDifferential, RemappedOutputsMatchScalar)
{
    MlpTopology logical{10, 4, 3};
    AcceleratorConfig cfg = smallArray();
    cfg.outputs = 5; // two spare physical rows
    MlpTopology extended =
        RemappedOutputMlp::extendedTopology(logical, cfg);
    std::vector<int> map{0, 3, 2}; // logical 1 steered to spare 3
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        MlpWeights w(logical);
        Rng wr(seed * 31);
        w.initRandom(wr, 1.2);

        Accelerator scalar_accel(cfg, extended);
        RemappedOutputMlp scalar_model(scalar_accel, logical, map);
        scalar_model.setWeights(w);
        Accelerator batch_accel(cfg, extended);
        RemappedOutputMlp batch_model(batch_accel, logical, map);
        batch_model.setWeights(w);

        DefectInjector scalar_inj(scalar_accel, SitePool::all());
        DefectInjector batch_inj(batch_accel, SitePool::all());
        Rng ir_a(seed * 37), ir_b(seed * 37);
        scalar_inj.inject(3, ir_a);
        batch_inj.inject(3, ir_b);

        Rng rr(seed * 41);
        auto rows = randomRows(70, 10, rr);
        expectBitIdentical(scalarSweep(scalar_model, rows),
                           batch_model.forwardBatch(rows));
    }
}

TEST(ForwardBatchDifferential, DeepStackMatchesScalar)
{
    DeepTopology topo{{12, 9, 7, 3}};
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        DeepWeights w(topo);
        Rng wr(seed * 43);
        w.initRandom(wr, 1.0);

        Accelerator scalar_accel(smallArray(), {12, 4, 3});
        DeepMuxedNetwork scalar_model(scalar_accel, topo);
        scalar_model.setLayerWeights(w);
        Accelerator batch_accel(smallArray(), {12, 4, 3});
        DeepMuxedNetwork batch_model(batch_accel, topo);
        batch_model.setLayerWeights(w);

        DefectInjector scalar_inj(scalar_accel,
                                  SitePool::inputAndHidden());
        DefectInjector batch_inj(batch_accel,
                                 SitePool::inputAndHidden());
        Rng ir_a(seed * 47), ir_b(seed * 47);
        scalar_inj.inject(4, ir_a);
        batch_inj.inject(4, ir_b);

        Rng rr(seed * 53);
        auto rows = randomRows(70, 12, rr);
        expectBitIdentical(scalarSweep(scalar_model, rows),
                           batch_model.forwardBatch(rows));
        EXPECT_EQ(scalar_model.simCounters().vectors(),
                  batch_model.simCounters().vectors());
    }
}

TEST(ForwardBatchDifferential, EnvKnobsPreserveBits)
{
    // DTANN_NO_BATCH forces every faulty sim (and thus batchPure())
    // off the lane path; DTANN_NO_CONE additionally disables cone
    // pruning. The knobs are read at injection time, so each
    // configuration gets freshly built twins; outputs must not move
    // by a single bit relative to the fast-path baseline.
    MlpTopology logical{12, 12, 3};
    const uint64_t seed = 3;
    MlpWeights w(logical);
    Rng wr(seed);
    w.initRandom(wr, 1.2);
    Rng rr(seed * 61);
    auto rows = randomRows(70, 12, rr);

    auto run = [&](bool batch_path) {
        Accelerator accel(smallArray(), {12, 4, 3});
        TimeMuxedMlp mux(accel, logical);
        mux.setWeights(w);
        DefectInjector inj(accel, SitePool::inputAndHidden());
        Rng ir(seed * 59);
        inj.inject(3, ir);
        return batch_path ? mux.forwardBatch(rows)
                          : scalarSweep(mux, rows);
    };

    auto want_scalar = run(false);
    auto want_batch = run(true);
    expectBitIdentical(want_scalar, want_batch);

    setenv("DTANN_NO_BATCH", "1", 1);
    {
        Accelerator accel(smallArray(), {12, 4, 3});
        TimeMuxedMlp mux(accel, logical);
        mux.setWeights(w);
        DefectInjector inj(accel, SitePool::inputAndHidden());
        Rng ir(seed * 59);
        inj.inject(3, ir);
        EXPECT_FALSE(accel.batchPure());
        expectBitIdentical(want_batch, mux.forwardBatch(rows));
    }
    setenv("DTANN_NO_CONE", "1", 1);
    expectBitIdentical(want_batch, run(true));
    expectBitIdentical(want_scalar, run(false));
    unsetenv("DTANN_NO_BATCH");
    expectBitIdentical(want_batch, run(true));
    unsetenv("DTANN_NO_CONE");
    expectBitIdentical(want_batch, run(true));
}

TEST(ForwardBatchDifferential, BatchBitIdenticalAcrossLaneWidths)
{
    // DTANN_LANES resizes the hoisted mux batch engine's chunks and
    // the fault-plane width underneath forwardBatch; no activation
    // bit may move across 64/256/512/auto.
    MlpTopology logical{12, 12, 3}; // mux factor 4
    MlpWeights w(logical);
    Rng wr(5);
    w.initRandom(wr, 1.2);

    auto runAt = [&](const char *lanes) {
        if (lanes)
            setenv("DTANN_LANES", lanes, 1);
        else
            unsetenv("DTANN_LANES");
        Accelerator accel(smallArray(), {12, 4, 3});
        TimeMuxedMlp mux(accel, logical);
        mux.setWeights(w);
        DefectInjector inj(accel, SitePool::inputAndHidden());
        Rng ir(7);
        inj.inject(4, ir);
        Rng rr(9);
        // 300 rows: spans several wide planes and ends on a partial
        // chunk at every width.
        auto rows = randomRows(300, 12, rr);
        auto acts = mux.forwardBatch(rows);
        unsetenv("DTANN_LANES");
        return acts;
    };
    auto oracle = runAt("64");
    expectBitIdentical(oracle, runAt("256"));
    expectBitIdentical(oracle, runAt("512"));
    expectBitIdentical(oracle, runAt(nullptr)); // auto width
}

} // namespace
} // namespace dtann
