/**
 * @file
 * Systolic-backend defect semantics: the properties that make the
 * weight-stationary grid a genuinely different defect target than
 * the spatial array — shared PEs serve both passes, pass addresses
 * fold onto canonical grid sites, and the batched forward stays
 * bit-identical to the per-row schedule even with stateful faults.
 */

#include <gtest/gtest.h>

#include "ann/fixed_mlp.hh"
#include "core/accelerator.hh"
#include "core/injector.hh"
#include "core/systolic.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

TEST(Systolic, LogicalSubsetMatchesSpatialBitExact)
{
    // A task smaller than the grid maps onto its top-left corner and
    // still agrees with the spatial array bit for bit.
    MlpTopology topo{5, 3, 2};
    SpatialBackend spatial(smallArray(), topo);
    SystolicBackend systolic(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(3);
    w.initRandom(rng, 2.0);
    spatial.setWeights(w);
    systolic.setWeights(w);
    for (int t = 0; t < 50; ++t) {
        std::vector<double> in(5);
        for (double &v : in)
            v = rng.nextDouble();
        Activations a = spatial.forward(in);
        Activations b = systolic.forward(in);
        EXPECT_EQ(a.hidden(), b.hidden());
        EXPECT_EQ(a.output(), b.output());
    }
}

TEST(Systolic, PassAddressFoldsToTheSharedPe)
{
    // Injecting through the output-pass address of a shared PE must
    // hit the same physical unit as its Hidden-canonical address.
    SystolicBackend accel(smallArray(), {12, 4, 3});
    Rng rng(7);
    UnitSite output_addr{UnitKind::Multiplier, Layer::Output, 1, 2};
    UnitSite canonical{UnitKind::Multiplier, Layer::Hidden, 1, 2};
    accel.injectDefects(output_addr, 3, rng);
    EXPECT_TRUE(accel.isFaulty(canonical));
    EXPECT_TRUE(accel.isFaulty(output_addr));
    ASSERT_EQ(accel.faultySites().size(), 1u);
    EXPECT_EQ(accel.faultySites()[0], canonical);
    accel.clearDefects();
    EXPECT_FALSE(accel.isFaulty(canonical));
}

TEST(Systolic, SharedPeProbeMergesBothPassStreams)
{
    // PE (row 2, column 1) multiplies for hidden neuron 1 (synapse
    // 2) AND output neuron 1 (synapse 2): one forward routes two
    // operations through its faulty simulation, and probe() reports
    // the merged two-pass stream under either pass address.
    MlpTopology topo{12, 4, 3};
    SystolicBackend accel(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(13);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);
    UnitSite site{UnitKind::Multiplier, Layer::Hidden, 1, 2};
    accel.injectDefects(site, 10, rng);

    std::vector<double> in(12, 0.5);
    accel.forward(in);
    EXPECT_EQ(accel.probe(site).amplitude.count(), 2u);
    UnitSite output_addr{UnitKind::Multiplier, Layer::Output, 1, 2};
    EXPECT_EQ(accel.probe(output_addr).amplitude.count(), 2u);

    // A PE outside the output pass's reach (row 7 > hidden fan-in)
    // serves only the hidden pass: one use per forward.
    accel.clearDefects();
    UnitSite hidden_only{UnitKind::Multiplier, Layer::Hidden, 1, 7};
    accel.injectDefects(hidden_only, 10, rng);
    accel.forward(in);
    EXPECT_EQ(accel.probe(hidden_only).amplitude.count(), 1u);
}

TEST(Systolic, FaultyLatchIsReloadedByBothPasses)
{
    // The stationary weight latch at PE (row 3, column 2) stores a
    // hidden-pass weight and is reloaded with an output-pass weight:
    // setWeights() drives two stores through its faulty simulation.
    MlpTopology topo{12, 4, 3};
    SystolicBackend accel(smallArray(), topo);
    Rng rng(11);
    UnitSite site{UnitKind::WeightLatch, Layer::Hidden, 2, 3};
    accel.injectDefects(site, 20, rng);
    MlpWeights w(topo);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);
    EXPECT_EQ(accel.probe(site).amplitude.count(), 2u);
}

TEST(Systolic, BypassedColumnFootSilencesBothPasses)
{
    // One activation unit sits at each column foot and serves both
    // passes: bypassing it (constant-zero output) silences hidden
    // neuron 2 AND output neuron 2 — the spatial array would need
    // two bypasses for the same effect.
    MlpTopology topo{12, 4, 3};
    SystolicBackend accel(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(17);
    w.initRandom(rng, 2.0);
    accel.setWeights(w);

    std::vector<double> in(12, 0.5);
    Activations clean = accel.forward(in);
    EXPECT_NE(clean.hidden()[2], 0.0);
    EXPECT_NE(clean.output()[2], 0.0);

    accel.bypassUnit({UnitKind::Activation, Layer::Hidden, 2, 0});
    Activations gated = accel.forward(in);
    EXPECT_EQ(gated.hidden()[2], 0.0);
    EXPECT_EQ(gated.output()[2], 0.0);

    // The output-pass address folds onto the same physical foot.
    accel.clearBypasses();
    accel.bypassUnit({UnitKind::Activation, Layer::Output, 2, 0});
    Activations refolded = accel.forward(in);
    EXPECT_EQ(refolded.hidden(), gated.hidden());
    EXPECT_EQ(refolded.output(), gated.output());
}

TEST(Systolic, FaultyForwardBatchMatchesPerRowForward)
{
    // Two grids with identical defects, one driven row by row and
    // one through forwardBatch. Shared PEs make the chunked batch
    // schedule reorder pass interleaving, so the backend must fall
    // back to the exact per-row schedule whenever a stateful
    // simulation is present — either way, outputs and per-site
    // probe statistics must be bit-identical.
    MlpTopology topo{12, 4, 3};
    SystolicBackend a(smallArray(), topo);
    SystolicBackend b(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(23);
    w.initRandom(rng, 2.0);

    Rng inj_a(31), inj_b(31);
    DefectInjector ia(a, SitePool::all());
    ia.inject(6, inj_a);
    DefectInjector ib(b, SitePool::all());
    ib.inject(6, inj_b);
    ASSERT_EQ(a.faultySites(), b.faultySites());
    a.setWeights(w);
    b.setWeights(w);

    std::vector<std::vector<double>> rows(90, std::vector<double>(12));
    for (auto &r : rows)
        for (double &v : r)
            v = rng.nextDouble();
    std::vector<Activations> batch = b.forwardBatch(rows);
    ASSERT_EQ(batch.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        Activations ref = a.forward(rows[i]);
        EXPECT_EQ(ref.hidden(), batch[i].hidden()) << "row " << i;
        EXPECT_EQ(ref.output(), batch[i].output()) << "row " << i;
    }
    for (const UnitSite &s : a.faultySites()) {
        const DeviationProbe &pa = a.probe(s);
        const DeviationProbe &pb = b.probe(s);
        EXPECT_EQ(pa.amplitude.count(), pb.amplitude.count());
        EXPECT_EQ(pa.amplitude.mean(), pb.amplitude.mean());
        EXPECT_EQ(pa.amplitude.stddev(), pb.amplitude.stddev());
    }
}

TEST(Systolic, PureFaultBatchUsesTheLanePath)
{
    // With only state-free faults the batched forward takes the
    // wide-lane path (and still matches per-row evaluation). The
    // injection seed is pinned to a draw whose adder faults are
    // pure, so the lane path is actually covered.
    MlpTopology topo{12, 4, 3};
    SystolicBackend a(smallArray(), topo);
    SystolicBackend b(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(29);
    w.initRandom(rng, 2.0);

    Rng inj_a(30), inj_b(30);
    UnitSite site{UnitKind::AdderStage, Layer::Hidden, 0, 1};
    a.injectDefects(site, 2, inj_a);
    b.injectDefects(site, 2, inj_b);
    a.setWeights(w);
    b.setWeights(w);
    ASSERT_TRUE(b.batchPure());

    std::vector<std::vector<double>> rows(70, std::vector<double>(12));
    for (auto &r : rows)
        for (double &v : r)
            v = rng.nextDouble();
    std::vector<Activations> batch = b.forwardBatch(rows);
    for (size_t i = 0; i < rows.size(); ++i) {
        Activations ref = a.forward(rows[i]);
        EXPECT_EQ(ref.hidden(), batch[i].hidden()) << "row " << i;
        EXPECT_EQ(ref.output(), batch[i].output()) << "row " << i;
    }
    // The lane path actually ran: sweeps were provisioned.
    EXPECT_GT(b.simCounters().batchSweeps, 0u);
}

} // namespace
} // namespace dtann
