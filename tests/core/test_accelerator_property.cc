/**
 * @file
 * Parameterized property tests over the accelerator's unit kinds
 * and logical mappings.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ann/fixed_mlp.hh"
#include "core/accelerator.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 10;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

class UnitKindProperty : public ::testing::TestWithParam<UnitKind>
{
};

TEST_P(UnitKindProperty, HeavyDefectsEventuallyObservableWhenExcited)
{
    // Pile defects on a unit that the logical network actually
    // exercises with varied operands; over several trials, at
    // least one must change the network function.
    UnitKind kind = GetParam();
    MlpTopology topo{10, 4, 3};
    int observed = 0;
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Accelerator accel(smallArray(), topo);
        FixedMlp ref(topo);
        MlpWeights w(topo);
        Rng rng(seed + 100);
        w.initRandom(rng, 2.0);
        UnitSite site{kind, Layer::Hidden, 1,
                      kind == UnitKind::Activation ? 0 : 3};
        Rng inj(seed);
        accel.injectDefects(site, 30, inj);
        // setWeights AFTER injection so faulty latches see writes.
        accel.setWeights(w);
        ref.setWeights(w);
        bool differs = false;
        for (int t = 0; t < 80 && !differs; ++t) {
            std::vector<double> in(10);
            for (double &v : in)
                v = rng.nextDouble();
            differs = accel.forward(in).hidden() != ref.forward(in).hidden();
        }
        observed += differs ? 1 : 0;
    }
    EXPECT_GT(observed, 0) << "30 defects never observable";
}

TEST_P(UnitKindProperty, ProbesOnlyCountWhenUnitIsUsed)
{
    UnitKind kind = GetParam();
    MlpTopology topo{10, 4, 3};
    Accelerator accel(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(3);
    w.initRandom(rng, 1.0);
    UnitSite site{kind, Layer::Hidden, 0,
                  kind == UnitKind::Activation ? 0 : 1};
    Rng inj(5);
    accel.injectDefects(site, 5, inj);
    accel.setWeights(w);
    accel.clearProbes();
    size_t rows = 7;
    for (size_t t = 0; t < rows; ++t)
        accel.forward(std::vector<double>(10, 0.4));
    const DeviationProbe &p = accel.probe(site);
    if (kind == UnitKind::WeightLatch) {
        // Latches are exercised at write time, not per row.
        EXPECT_EQ(p.amplitude.count(), 0u);
    } else {
        EXPECT_EQ(p.amplitude.count(), rows);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllUnitKinds, UnitKindProperty,
    ::testing::Values(UnitKind::WeightLatch, UnitKind::Multiplier,
                      UnitKind::AdderStage, UnitKind::Activation),
    [](const auto &info) {
        switch (info.param) {
          case UnitKind::WeightLatch: return "Latch";
          case UnitKind::Multiplier: return "Multiplier";
          case UnitKind::AdderStage: return "AdderStage";
          default: return "Activation";
        }
    });

TEST(AcceleratorMapping, OneOutputTaskWorks)
{
    // Degenerate-but-legal logical shapes map cleanly.
    MlpTopology topo{1, 1, 1};
    Accelerator accel(smallArray(), topo);
    MlpWeights w(topo);
    w.hid(0, 0) = 2.0;
    w.out(0, 0) = 2.0;
    accel.setWeights(w);
    Activations act = accel.forward(std::vector<double>{1.0});
    EXPECT_GT(act.output()[0], 0.5);
}

TEST(AcceleratorMapping, ExactFitUsesAllUnits)
{
    MlpTopology topo{10, 4, 3};
    Accelerator accel(smallArray(), topo);
    EXPECT_EQ(accel.unitCount(UnitKind::Multiplier),
              4 * 11 + 3 * 5);
}

TEST(AcceleratorMapping, UnusedRegionWeightsStayZero)
{
    // A small logical task leaves the rest of the array written
    // with zeros; spare physical outputs then sit at pwl(0) = 0.5
    // but are never read logically.
    MlpTopology topo{2, 2, 2};
    Accelerator accel(smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(9);
    w.initRandom(rng, 1.0);
    accel.setWeights(w);
    Activations act = accel.forward(std::vector<double>{0.3, 0.9});
    EXPECT_EQ(act.output().size(), 2u);
    EXPECT_EQ(act.hidden().size(), 2u);
}

} // namespace
} // namespace dtann
