/**
 * @file
 * Tests for deep networks executed on the physical array.
 */

#include <gtest/gtest.h>

#include "ann/deep.hh"
#include "ann/fixed_mlp.hh"
#include "ann/trainer.hh"
#include "core/deep_mux.hh"
#include "core/injector.hh"
#include "data/synth_uci.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

TEST(DeepMux, TwoStageStackMatchesFixedMlp)
{
    // An {in, h, out} deep stack on the array must be bit-exact
    // against the fixed-point 2-layer reference.
    DeepTopology t{{10, 4, 3}};
    Accelerator accel(smallArray(), {10, 4, 3});
    DeepMuxedNetwork deep(accel, t);
    FixedMlp ref({10, 4, 3});

    DeepWeights dw(t);
    Rng rng(3);
    dw.initRandom(rng, 1.2);
    deep.setLayerWeights(dw);
    ref.setLayerWeights(dw);

    for (int tcase = 0; tcase < 25; ++tcase) {
        std::vector<double> in(10);
        for (double &v : in)
            v = rng.nextDouble();
        Activations acts = deep.forward(in);
        Activations r = ref.forward(in);
        EXPECT_EQ(acts.output(), r.output());
    }
}

TEST(DeepMux, ThreeHiddenLayersRun)
{
    DeepTopology t{{12, 9, 7, 5, 3}};
    Accelerator accel(smallArray(), {12, 4, 3});
    DeepMuxedNetwork deep(accel, t);
    DeepWeights w(t);
    Rng rng(5);
    w.initRandom(rng, 1.0);
    deep.setLayerWeights(w);
    std::vector<double> in(12, 0.5);
    Activations act = deep.forward(in);
    ASSERT_EQ(act.layers.size(), 4u);
    EXPECT_EQ(act.layers[0].size(), 9u);
    EXPECT_EQ(act.layers[3].size(), 3u);
    for (const auto &layer : act.layers)
        for (double y : layer) {
            EXPECT_GE(y, 0.0);
            EXPECT_LE(y, 1.0 + 1e-9);
        }
}

TEST(DeepMux, PassCountSumsOverStages)
{
    Accelerator accel(smallArray(), {12, 4, 3});
    // Layers: 9 neurons/fanin 12 -> 3 batches; 7/9 -> 2; 5/7 -> 2;
    // 3/5 -> 1. All fan-ins fit (<=12): 1 pass per batch.
    DeepMuxedNetwork deep(accel, DeepTopology{{12, 9, 7, 5, 3}});
    EXPECT_EQ(deep.passesPerRow(), 3u + 2u + 2u + 1u);
}

TEST(DeepMux, TrainsOnIris)
{
    Rng gen(13);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 120);
    AcceleratorConfig cfg;
    cfg.inputs = 8;
    cfg.hidden = 4;
    cfg.outputs = 3;
    Accelerator accel(cfg, {8, 4, 3});
    DeepMuxedNetwork deep(accel, DeepTopology{{4, 6, 5, 3}});
    Trainer trainer({5, 60, 0.3, 0.2});
    Rng rng(7);
    trainer.trainLayers(deep, ds, rng);
    EXPECT_GT(evalAccuracy(deep, ds), 0.8);
}

TEST(DeepMux, PhysicalDefectTouchesMultipleLayers)
{
    // One faulty physical activation is reused by every logical
    // layer batch that maps onto it.
    DeepTopology t{{12, 8, 8, 3}};
    Accelerator accel(smallArray(), {12, 4, 3});
    DeepMuxedNetwork deep(accel, t);
    FloatDeepMlp ref(t);
    DeepWeights w(t);
    Rng rng(17);
    w.initRandom(rng, 1.0);
    deep.setLayerWeights(w);
    ref.setLayerWeights(w);

    UnitSite site{UnitKind::Activation, Layer::Hidden, 1, 0};
    accel.injectDefects(site, 25, rng);

    std::vector<double> in(12, 0.6);
    Activations faulty = deep.forward(in);
    Activations clean = ref.forward(in);
    int corrupted_layers = 0;
    for (size_t s = 0; s < faulty.layers.size(); ++s) {
        for (size_t j = 0; j < faulty.layers[s].size(); ++j)
            if (std::abs(faulty.layers[s][j] - clean.layers[s][j]) >
                0.25) {
                ++corrupted_layers;
                break;
            }
    }
    EXPECT_GE(corrupted_layers, 2)
        << "defect should propagate across stacked layers";
}

TEST(DeepMux, CountersAggregateAcceleratorWork)
{
    DeepTopology t{{12, 8, 8, 3}};
    Accelerator accel(smallArray(), {12, 4, 3});
    DeepMuxedNetwork deep(accel, t);
    DeepWeights w(t);
    Rng rng(23);
    w.initRandom(rng, 1.0);
    deep.setLayerWeights(w);
    UnitSite site{UnitKind::Multiplier, Layer::Hidden, 0, 2};
    accel.injectDefects(site, 10, rng);

    EXPECT_EQ(deep.simCounters().gateEvals, 0u);
    std::vector<double> in(12, 0.4);
    deep.forward(in);
    SimCounters after = deep.simCounters();
    EXPECT_GT(after.gateEvals, 0u);
    EXPECT_EQ(after.gateEvals, accel.simCounters().gateEvals);
}

} // namespace
} // namespace dtann
