/**
 * @file
 * Parallel campaign engine tests.
 *
 * The central contract: campaign output is bit-identical for any
 * worker-thread count, because every cell derives its randomness
 * from counter-based sub-streams (Rng::substream) instead of the
 * order-dependent split() chain.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "core/campaign.hh"

namespace dtann {
namespace {

Fig10Config
tinyFig10()
{
    Fig10Config cfg;
    cfg.tasks = {"iris"};
    cfg.defectCounts = {0, 4};
    cfg.repetitions = 2;
    cfg.folds = 2;
    cfg.rows = 90;
    cfg.epochScale = 0.4;
    cfg.retrainScale = 0.3;
    cfg.seed = 7;
    cfg.array.inputs = 16;
    cfg.array.hidden = 8;
    cfg.array.outputs = 3;
    return cfg;
}

void
expectIdentical(const std::vector<Fig10Curve> &a,
                const std::vector<Fig10Curve> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c) {
        EXPECT_EQ(a[c].task, b[c].task);
        ASSERT_EQ(a[c].points.size(), b[c].points.size());
        for (size_t p = 0; p < a[c].points.size(); ++p) {
            EXPECT_EQ(a[c].points[p].defects, b[c].points[p].defects);
            // Bit-identical, not approximately equal.
            EXPECT_EQ(a[c].points[p].accuracy, b[c].points[p].accuracy);
            EXPECT_EQ(a[c].points[p].stddev, b[c].points[p].stddev);
        }
    }
}

TEST(EngineDeterminism, Fig10IdenticalForOneTwoAndEightThreads)
{
    Fig10Config cfg = tinyFig10();
    cfg.threads = 1;
    auto one = runFig10(cfg);
    cfg.threads = 2;
    auto two = runFig10(cfg);
    cfg.threads = 8;
    auto eight = runFig10(cfg);
    expectIdentical(one, two);
    expectIdentical(one, eight);
}

TEST(EngineDeterminism, Fig11IdenticalAcrossThreadCounts)
{
    Fig11Config cfg;
    cfg.tasks = {"iris"};
    cfg.repetitions = 2;
    cfg.folds = 2;
    cfg.rows = 90;
    cfg.epochScale = 0.4;
    cfg.retrainScale = 0.3;
    cfg.seed = 9;
    cfg.array.inputs = 16;
    cfg.array.hidden = 8;
    cfg.array.outputs = 3;

    cfg.threads = 1;
    auto serial = runFig11(cfg);
    cfg.threads = 8;
    auto parallel = runFig11(cfg);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t c = 0; c < serial.size(); ++c) {
        ASSERT_EQ(serial[c].samples.size(), parallel[c].samples.size());
        for (size_t s = 0; s < serial[c].samples.size(); ++s) {
            EXPECT_EQ(serial[c].samples[s].amplitude,
                      parallel[c].samples[s].amplitude);
            EXPECT_EQ(serial[c].samples[s].accuracy,
                      parallel[c].samples[s].accuracy);
            EXPECT_EQ(serial[c].samples[s].site,
                      parallel[c].samples[s].site);
        }
        EXPECT_EQ(serial[c].binAccuracy, parallel[c].binAccuracy);
    }
}

TEST(EngineDeterminism, Fig5IdenticalAcrossThreadCounts)
{
    Fig5Config cfg;
    cfg.op = Fig5Operator::Adder4;
    cfg.defects = 3;
    cfg.repetitions = 10;
    cfg.seed = 5;

    cfg.threads = 1;
    Fig5Result serial = runFig5(cfg);
    cfg.threads = 4;
    Fig5Result parallel = runFig5(cfg);

    EXPECT_EQ(serial.none.items(), parallel.none.items());
    EXPECT_EQ(serial.gate.items(), parallel.gate.items());
    EXPECT_EQ(serial.trans.items(), parallel.trans.items());
}

TEST(Engine, ProgressCallbackSeesEveryCell)
{
    Fig10Config cfg = tinyFig10();
    cfg.threads = 2;
    std::atomic<size_t> calls{0};
    size_t last_done = 0, reported_total = 0;
    bool monotone = true;
    cfg.onCellDone = [&](const CellReport &r) {
        // The engine serializes callbacks, so plain reads are safe.
        ++calls;
        monotone &= r.cellsDone == last_done + 1;
        last_done = r.cellsDone;
        reported_total = r.cellsTotal;
        EXPECT_EQ(r.task, "iris");
        EXPECT_GE(r.accuracy, 0.0);
        EXPECT_LE(r.accuracy, 1.0);
    };
    runFig10(cfg);

    // 1 defect-free cell + 2 repetitions of the 4-defect point.
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_EQ(last_done, 3u);
    EXPECT_EQ(reported_total, 3u);
    EXPECT_TRUE(monotone) << "cellsDone must increment by 1 per report";
}

TEST(Engine, ThreadsFieldAndEnvironmentResolve)
{
    CampaignConfig cfg;
    cfg.threads = 3;
    CampaignEngine explicit_width(cfg);
    EXPECT_EQ(explicit_width.threads(), 3);

    setenv("DTANN_THREADS", "2", 1);
    cfg.threads = 0;
    CampaignEngine from_env(cfg);
    EXPECT_EQ(from_env.threads(), 2);
    unsetenv("DTANN_THREADS");
}

TEST(Engine, CampaignJsonExportsParse)
{
    Fig10Config cfg = tinyFig10();
    auto curves = runFig10(cfg);
    std::string json = toJson(curves);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
    EXPECT_NE(json.find("\"task\":\"iris\""), std::string::npos);
    EXPECT_NE(json.find("\"defects\":0"), std::string::npos);
    EXPECT_NE(json.find("\"accuracy\":"), std::string::npos);
}

} // namespace
} // namespace dtann
