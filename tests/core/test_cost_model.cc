/**
 * @file
 * Tests for the Table III cost model.
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"

namespace dtann {
namespace {

TEST(CostModel, CalibratedTotalsMatchTableIII)
{
    CostModel cm(AcceleratorConfig{});
    BlockCost acc = cm.accelerator();
    EXPECT_NEAR(acc.areaMm2, 9.02, 1e-9);
    EXPECT_NEAR(acc.energyPerRowNj, 70.16, 1e-9);
    EXPECT_NEAR(acc.latencyNs, 14.92, 1e-9);
    // Power follows: 70.16 nJ / 14.92 ns = 4.70 W.
    EXPECT_NEAR(acc.powerW, 4.70, 0.01);
}

TEST(CostModel, ActivationUnitIsTinyShare)
{
    CostModel cm(AcceleratorConfig{});
    BlockCost act = cm.activation();
    BlockCost acc = cm.accelerator();
    // Table III: 0.017 mm^2 of 9.02 (~0.2%); ours must be well
    // under 1% and nonzero.
    EXPECT_GT(act.areaMm2, 0.0005);
    EXPECT_LT(act.areaMm2 / acc.areaMm2, 0.01);
    EXPECT_GT(act.latencyNs, 0.5);
    EXPECT_LT(act.latencyNs, 6.0); // paper: 2.84 ns
    EXPECT_LT(act.powerW, 0.05);
}

TEST(CostModel, InterfaceIsSmallShare)
{
    CostModel cm(AcceleratorConfig{});
    BlockCost itf = cm.interface();
    BlockCost acc = cm.accelerator();
    // Table III: 0.047 mm^2 (~0.5% of area), 0.0054 W.
    EXPECT_GT(itf.areaMm2, 0.01);
    EXPECT_LT(itf.areaMm2, 0.15);
    EXPECT_LT(itf.areaMm2 / acc.areaMm2, 0.02);
    EXPECT_LT(itf.powerW, 0.05);
}

TEST(CostModel, KeyLogicFractionScaling)
{
    // Paper Section VI-A: under 10% after 4 generations (22 nm),
    // about 25% after 6 (11 nm).
    CostModel cm(AcceleratorConfig{});
    EXPECT_LT(cm.keyLogicFraction(0), 0.02);
    EXPECT_LT(cm.keyLogicFraction(4), 0.10);
    double f6 = cm.keyLogicFraction(6);
    EXPECT_GT(f6, 0.10);
    EXPECT_LT(f6, 0.40);
    // Monotone in generations.
    for (int g = 0; g < 7; ++g)
        EXPECT_LT(cm.keyLogicFraction(g), cm.keyLogicFraction(g + 1));
}

TEST(CostModel, OutputCriticalShares)
{
    // Paper: output adders + activations are 25.9% of the output
    // layer and 2.3% of total area. Structural shares depend on
    // our netlists; assert the same order of magnitude.
    CostModel cm(AcceleratorConfig{});
    double of_layer = cm.outputCriticalShareOfOutputLayer();
    double of_total = cm.outputCriticalAreaFraction();
    EXPECT_GT(of_layer, 0.05);
    EXPECT_LT(of_layer, 0.5);
    EXPECT_GT(of_total, 0.005);
    EXPECT_LT(of_total, 0.05);
    EXPECT_LT(of_total, of_layer);
}

TEST(CostModel, HardenedKeyLogicOverheadIsSmallTodayGrowsWithScaling)
{
    CostModel cm(AcceleratorConfig{});
    double now = cm.hardenedKeyLogicOverhead(2.0, 0);
    double later = cm.hardenedKeyLogicOverhead(2.0, 6);
    EXPECT_GT(now, 0.0);
    EXPECT_LT(now, 0.02); // well under 2% today
    EXPECT_GT(later, now);
    EXPECT_DOUBLE_EQ(cm.hardenedKeyLogicOverhead(1.0, 0), 0.0);
}

TEST(CostModel, NonReferenceConfigsScaleFromReferenceCalibration)
{
    // A half-size array must cost roughly half the area, not be
    // re-normalized to 9.02 mm^2.
    AcceleratorConfig half;
    half.inputs = 45;
    half.hidden = 5;
    CostModel ref((AcceleratorConfig()));
    CostModel small(half);
    EXPECT_LT(small.accelerator().areaMm2,
              0.5 * ref.accelerator().areaMm2);
    EXPECT_GT(small.accelerator().areaMm2,
              0.05 * ref.accelerator().areaMm2);

    // The mirror-style full array is smaller and faster than the
    // NAND9 reference under the same calibration constants.
    AcceleratorConfig mirror;
    mirror.faStyle = FaStyle::Mirror;
    CostModel m(mirror);
    EXPECT_LT(m.accelerator().areaMm2, ref.accelerator().areaMm2);
    EXPECT_LT(m.accelerator().latencyNs, ref.accelerator().latencyNs);
}

TEST(CostModel, MirrorStyleReducesArea)
{
    AcceleratorConfig nand9;
    AcceleratorConfig mirror;
    mirror.faStyle = FaStyle::Mirror;
    CostModel a(nand9), b(mirror);
    // 28T vs 36T full adders: the mirror array has fewer
    // transistors, so at equal calibration constants it is smaller.
    EXPECT_LT(b.arrayTransistors(), a.arrayTransistors());
}

TEST(CostModel, BiggerArrayCostsMore)
{
    AcceleratorConfig small;
    small.inputs = 30;
    CostModel a(small), b(AcceleratorConfig{});
    EXPECT_LT(a.arrayTransistors(), b.arrayTransistors());
    // Interface scales with I/O count too.
    EXPECT_LT(a.interfaceTransistors(), b.interfaceTransistors());
}

TEST(CostModel, CriticalPathDominatedByAdderTreeDepth)
{
    AcceleratorConfig wide;
    wide.inputs = 90;
    AcceleratorConfig narrow;
    narrow.inputs = 10;
    EXPECT_GT(CostModel(wide).criticalPathDepth(),
              CostModel(narrow).criticalPathDepth());
}

} // namespace
} // namespace dtann
