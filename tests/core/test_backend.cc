/**
 * @file
 * Cross-backend differential suite for the HardwareBackend
 * boundary: both microarchitectures must agree bit-exactly on the
 * defect-free forward pass of every paper task (the property that
 * makes defect campaigns comparable across backends), and the
 * backend naming / construction / enumeration plumbing must hold.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <type_traits>

#include "ann/fixed_mlp.hh"
#include "core/accelerator.hh"
#include "core/injector.hh"
#include "core/systolic.hh"
#include "data/synth_uci.hh"
#include "mitigate/mitigator.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

TEST(Backend, NamesRoundTrip)
{
    EXPECT_STREQ(backendName(BackendKind::Spatial), "spatial");
    EXPECT_STREQ(backendName(BackendKind::Systolic), "systolic");
    BackendKind kind;
    EXPECT_TRUE(backendFromName("spatial", kind));
    EXPECT_EQ(kind, BackendKind::Spatial);
    EXPECT_TRUE(backendFromName("systolic", kind));
    EXPECT_EQ(kind, BackendKind::Systolic);
    EXPECT_FALSE(backendFromName("tpu", kind));
    EXPECT_FALSE(backendFromName("", kind));
    // The error-message name list covers exactly the valid names.
    EXPECT_EQ(backendNameList(), "spatial, systolic");
}

TEST(Backend, MakeBackendConstructsTheRequestedKind)
{
    auto spatial =
        makeBackend(BackendKind::Spatial, smallArray(), {12, 4, 3});
    EXPECT_EQ(spatial->backendKind(), BackendKind::Spatial);
    auto systolic =
        makeBackend(BackendKind::Systolic, smallArray(), {12, 4, 3});
    EXPECT_EQ(systolic->backendKind(), BackendKind::Systolic);
    // The legacy name keeps meaning the paper's microarchitecture.
    static_assert(std::is_same_v<Accelerator, SpatialBackend>);
}

TEST(Backend, CleanForwardAgreesAcrossBackendsOnAllPaperTasks)
{
    // The acceptance differential: for every task of the paper's
    // benchmark suite, the spatial array and the systolic grid
    // produce bit-identical defect-free activations (and both match
    // the fixed-point reference network).
    AcceleratorConfig cfg; // the paper's 90-10-10 array
    for (const UciTaskSpec &task : uciTasks()) {
        ASSERT_LE(task.attributes, cfg.inputs) << task.name;
        ASSERT_LE(task.classes, cfg.outputs) << task.name;
        // Tasks wider than the array run through the time-mux
        // wrapper in the campaigns; the direct-mapped differential
        // clamps to what fits.
        MlpTopology topo{task.attributes,
                         std::min(task.hidden, cfg.hidden),
                         task.classes};
        auto spatial = makeBackend(BackendKind::Spatial, cfg, topo);
        auto systolic = makeBackend(BackendKind::Systolic, cfg, topo);
        FixedMlp ref(topo);
        MlpWeights w(topo);
        Rng rng(101);
        w.initRandom(rng, 2.0);
        spatial->setWeights(w);
        systolic->setWeights(w);
        ref.setWeights(w);
        for (int t = 0; t < 10; ++t) {
            std::vector<double> in(
                static_cast<size_t>(task.attributes));
            for (double &v : in)
                v = rng.nextDouble();
            Activations a = spatial->forward(in);
            Activations b = systolic->forward(in);
            Activations c = ref.forward(in);
            EXPECT_EQ(a.hidden(), b.hidden()) << task.name;
            EXPECT_EQ(a.output(), b.output()) << task.name;
            EXPECT_EQ(a.output(), c.output()) << task.name;
        }
    }
}

TEST(Backend, CleanForwardBatchAgreesAcrossBackends)
{
    MlpTopology topo{12, 4, 3};
    auto spatial = makeBackend(BackendKind::Spatial, smallArray(), topo);
    auto systolic =
        makeBackend(BackendKind::Systolic, smallArray(), topo);
    MlpWeights w(topo);
    Rng rng(103);
    w.initRandom(rng, 2.0);
    spatial->setWeights(w);
    systolic->setWeights(w);

    // 70 rows: one full 64-lane sweep plus a ragged remainder.
    std::vector<std::vector<double>> rows(70, std::vector<double>(12));
    for (auto &r : rows)
        for (double &v : r)
            v = rng.nextDouble();
    std::vector<Activations> a = spatial->forwardBatch(rows);
    std::vector<Activations> b = systolic->forwardBatch(rows);
    ASSERT_EQ(a.size(), rows.size());
    ASSERT_EQ(b.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
        EXPECT_EQ(a[i].hidden(), b[i].hidden()) << "row " << i;
        EXPECT_EQ(a[i].output(), b[i].output()) << "row " << i;
    }
}

TEST(Backend, SpatialEnumerationMatchesFreeFunction)
{
    // SpatialBackend::enumerateSites is the refactored home of the
    // original free enumeration; both must list the same population
    // in the same order (campaign stream compatibility).
    SpatialBackend accel(smallArray(), {12, 4, 3});
    for (const SitePool &pool :
         {SitePool::all(), SitePool::inputAndHidden(),
          SitePool::outputCritical()}) {
        EXPECT_EQ(accel.enumerateSites(pool),
                  enumerateSites(accel.config(), pool));
    }
}

TEST(Backend, SystolicGridGeometryAndEnumeration)
{
    SystolicBackend accel(smallArray(), {12, 4, 3});
    // rows = max(inputs, hidden) + 1 (bias row), cols = max(hidden,
    // outputs).
    EXPECT_EQ(accel.gridRows(), 13);
    EXPECT_EQ(accel.gridCols(), 4);
    EXPECT_EQ(accel.unitCount(UnitKind::WeightLatch), 13 * 4);
    EXPECT_EQ(accel.unitCount(UnitKind::Multiplier), 13 * 4);
    EXPECT_EQ(accel.unitCount(UnitKind::AdderStage), 12 * 4);
    EXPECT_EQ(accel.unitCount(UnitKind::Activation), 4);

    // Full-pool enumeration: every grid unit some pass uses, once,
    // at its Hidden-canonical physical address.
    std::vector<UnitSite> sites = accel.enumerateSites(SitePool::all());
    std::set<UnitSite> unique(sites.begin(), sites.end());
    EXPECT_EQ(unique.size(), sites.size());
    for (const UnitSite &s : sites) {
        EXPECT_EQ(s.layer, Layer::Hidden) << s.describe();
        EXPECT_LT(s.neuron, accel.gridCols()) << s.describe();
        EXPECT_LT(s.index, accel.gridRows()) << s.describe();
    }
    // The hidden pass uses all 13 rows of its 4 columns; the output
    // pass only adds sites the hidden pass already covers (3 of the
    // 4 columns, rows 0..4), so the count is the hidden pass's:
    // 13*4 latches + 13*4 mults + 12*4 adders + 4 activations.
    EXPECT_EQ(sites.size(), 13u * 4 + 13u * 4 + 12u * 4 + 4);

    // The output-critical pool reaches only what the hidden->output
    // schedule touches: adder stages 0..3 and the activation foot
    // of columns 0..2.
    std::vector<UnitSite> critical =
        accel.enumerateSites(SitePool::outputCritical());
    EXPECT_EQ(critical.size(), 4u * 3 + 3);
    for (const UnitSite &s : critical)
        EXPECT_TRUE(s.kind == UnitKind::AdderStage ||
                    s.kind == UnitKind::Activation)
            << s.describe();
}

TEST(Backend, StrategySupportMatrix)
{
    // Spare-row remapping and critical replication assume the
    // spatial array's dedicated spare rows; everything else works
    // on any backend.
    for (Strategy s :
         {Strategy::NoOp, Strategy::RetrainOnly, Strategy::BypassFaulty,
          Strategy::RemapToSpares, Strategy::ClampActivations,
          Strategy::ReplicateCritical})
        EXPECT_TRUE(strategySupported(s, BackendKind::Spatial));
    EXPECT_FALSE(
        strategySupported(Strategy::RemapToSpares, BackendKind::Systolic));
    EXPECT_FALSE(strategySupported(Strategy::ReplicateCritical,
                                   BackendKind::Systolic));
    EXPECT_TRUE(strategySupported(Strategy::NoOp, BackendKind::Systolic));
    EXPECT_TRUE(
        strategySupported(Strategy::RetrainOnly, BackendKind::Systolic));
    EXPECT_TRUE(
        strategySupported(Strategy::BypassFaulty, BackendKind::Systolic));
    EXPECT_TRUE(strategySupported(Strategy::ClampActivations,
                                  BackendKind::Systolic));
}

} // namespace
} // namespace dtann
