/**
 * @file
 * Selective output replication: planning, the voting forward model,
 * and agreement with the spare-array median voter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>

#include "ann/trainer.hh"
#include "core/spare.hh"
#include "data/synth_uci.hh"
#include "mitigate/replicate.hh"

namespace dtann {
namespace {

/** 16x8x6 array mapping a 4-6-3 task: 3 spare output rows. */
AcceleratorConfig
smallArray()
{
    AcceleratorConfig cfg;
    cfg.inputs = 16;
    cfg.hidden = 8;
    cfg.outputs = 6;
    return cfg;
}

MlpTopology
logicalTopo()
{
    return {4, 6, 3};
}

TEST(PlanOutputReplication, CleanMapLeavesSingletons)
{
    std::vector<std::vector<int>> plan =
        planOutputReplication(DefectMap(), logicalTopo(), smallArray());
    ASSERT_EQ(plan.size(), 3u);
    EXPECT_EQ(plan[0], (std::vector<int>{0}));
    EXPECT_EQ(plan[1], (std::vector<int>{1}));
    EXPECT_EQ(plan[2], (std::vector<int>{2}));
}

TEST(PlanOutputReplication, FaultyRowRecruitsTwoCleanSpares)
{
    DefectMap map;
    map.markSuspect({UnitKind::Activation, Layer::Output, 1, 0});
    std::vector<std::vector<int>> plan =
        planOutputReplication(map, logicalTopo(), smallArray());
    EXPECT_EQ(plan[0], (std::vector<int>{0}));
    EXPECT_EQ(plan[1], (std::vector<int>{1, 3, 4}));
    EXPECT_EQ(plan[2], (std::vector<int>{2}));

    // A faulty spare is skipped in favour of the next clean one.
    map.markSuspect({UnitKind::AdderStage, Layer::Output, 3, 0});
    plan = planOutputReplication(map, logicalTopo(), smallArray());
    EXPECT_EQ(plan[1], (std::vector<int>{1, 4, 5}));
}

TEST(PlanOutputReplication, SparesAreSharedAndRunOut)
{
    DefectMap map;
    map.markSuspect({UnitKind::Activation, Layer::Output, 0, 0});
    map.markSuspect({UnitKind::Activation, Layer::Output, 1, 0});
    std::vector<std::vector<int>> plan =
        planOutputReplication(map, logicalTopo(), smallArray());
    // Row 0 takes the first two spares (median-of-3), row 1 gets the
    // last one (pair average), each spare used exactly once.
    EXPECT_EQ(plan[0], (std::vector<int>{0, 3, 4}));
    EXPECT_EQ(plan[1], (std::vector<int>{1, 5}));
    EXPECT_EQ(plan[2], (std::vector<int>{2}));

    // Every row faulty: no clean spare left, graceful degrade to
    // retrain-only (all singletons).
    DefectMap all;
    for (int n = 0; n < smallArray().outputs; ++n)
        all.markSuspect({UnitKind::Activation, Layer::Output, n, 0});
    plan = planOutputReplication(all, logicalTopo(), smallArray());
    for (size_t k = 0; k < plan.size(); ++k)
        EXPECT_EQ(plan[k], std::vector<int>{static_cast<int>(k)});
}

TEST(PlanOutputReplication, HiddenSuspectsDoNotReplicate)
{
    DefectMap map;
    map.markSuspect({UnitKind::Multiplier, Layer::Hidden, 1, 2});
    std::vector<std::vector<int>> plan =
        planOutputReplication(map, logicalTopo(), smallArray());
    for (size_t k = 0; k < plan.size(); ++k)
        EXPECT_EQ(plan[k], std::vector<int>{static_cast<int>(k)});
}

TEST(ReplicatedOutputMlp, CleanForwardMatchesPlainNetwork)
{
    MlpTopology logical = logicalTopo();
    Accelerator accel(smallArray(), ReplicatedOutputMlp::extendedTopology(
                                        logical, smallArray()));
    // Replicate every logical output (identical copies on a clean
    // array: the vote must be exact).
    ReplicatedOutputMlp rep(accel, logical, {{0, 3}, {1, 4, 5}, {2}});
    EXPECT_EQ(rep.spareRowsUsed(), 3);
    Accelerator plain(smallArray(), logical);

    MlpWeights w(logical);
    Rng rng(3);
    w.initRandom(rng, 1.5);
    rep.setWeights(w);
    plain.setWeights(w);
    for (int t = 0; t < 30; ++t) {
        std::vector<double> in(4);
        for (double &v : in)
            v = rng.nextDouble();
        Activations a = rep.forward(in);
        Activations b = plain.forward(in);
        ASSERT_EQ(a.output().size(), b.output().size());
        for (size_t k = 0; k < a.output().size(); ++k)
            EXPECT_DOUBLE_EQ(a.output()[k], b.output()[k]);
        ASSERT_EQ(a.hidden().size(),
                  static_cast<size_t>(logical.hidden));
    }
}

TEST(ReplicatedOutputMlp, BatchAgreesWithScalarForward)
{
    MlpTopology logical = logicalTopo();
    Accelerator accel(smallArray(), ReplicatedOutputMlp::extendedTopology(
                                        logical, smallArray()));
    ReplicatedOutputMlp rep(accel, logical, {{0, 3, 4}, {1}, {2, 5}});

    MlpWeights w(logical);
    Rng rng(11);
    w.initRandom(rng, 1.5);
    // Wreck one replicated row so the vote actually matters.
    Rng inj(41);
    accel.injectDefects({UnitKind::Activation, Layer::Output, 0, 0}, 15,
                        inj);
    rep.setWeights(w);

    std::vector<std::vector<double>> rows(20, std::vector<double>(4));
    for (std::vector<double> &row : rows)
        for (double &v : row)
            v = rng.nextDouble();
    std::vector<Activations> batch = rep.forwardBatch(rows);
    ASSERT_EQ(batch.size(), rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
        Activations one = rep.forward(rows[r]);
        EXPECT_EQ(batch[r].output(), one.output()) << "row " << r;
        EXPECT_EQ(batch[r].hidden(), one.hidden()) << "row " << r;
    }
}

TEST(ReplicatedOutputMlp, MedianOfThreeRejectsBrokenCopyExactly)
{
    // The replicate analog of Spare.MedianOfThreeRejectsSingleBroken-
    // CopyExactly: same medianVote rule, so one wrecked copy out of
    // three leaves the voted output bit-identical to the clean
    // network.
    MlpTopology logical = logicalTopo();
    Accelerator accel(smallArray(), ReplicatedOutputMlp::extendedTopology(
                                        logical, smallArray()));
    ReplicatedOutputMlp rep(accel, logical, {{0}, {1, 3, 4}, {2}});
    Accelerator clean(smallArray(), logical);

    MlpWeights w(logical);
    Rng rng(7);
    w.initRandom(rng, 1.5);
    rep.setWeights(w);
    clean.setWeights(w);

    UnitSite site{UnitKind::Activation, Layer::Output, 1, 0};
    Rng inj(31);
    accel.injectDefects(site, 30, inj);

    for (int t = 0; t < 60; ++t) {
        std::vector<double> in(4);
        for (double &v : in)
            v = rng.nextDouble();
        Activations a = rep.forward(in);
        Activations b = clean.forward(in);
        for (size_t k = 0; k < a.output().size(); ++k)
            EXPECT_DOUBLE_EQ(a.output()[k], b.output()[k])
                << "output " << k << " trial " << t;
    }
}

TEST(ReplicatedOutputMlp, PairAverageHalvesDeviation)
{
    MlpTopology logical = logicalTopo();
    Accelerator accel(smallArray(), ReplicatedOutputMlp::extendedTopology(
                                        logical, smallArray()));
    ReplicatedOutputMlp rep(accel, logical, {{0}, {1, 3}, {2}});
    Accelerator plain(smallArray(), logical);
    Accelerator clean(smallArray(), logical);

    MlpWeights w(logical);
    Rng rng(5);
    w.initRandom(rng, 1.5);
    rep.setWeights(w);
    plain.setWeights(w);
    clean.setWeights(w);

    UnitSite site{UnitKind::Activation, Layer::Output, 1, 0};
    Rng inj1(99), inj2(99);
    accel.injectDefects(site, 30, inj1);
    plain.injectDefects(site, 30, inj2);

    double max_dev_rep = 0.0, max_dev_plain = 0.0;
    for (int t = 0; t < 60; ++t) {
        std::vector<double> in(4);
        for (double &v : in)
            v = rng.nextDouble();
        double ref = clean.forward(in).output()[1];
        max_dev_rep = std::max(
            max_dev_rep, std::abs(rep.forward(in).output()[1] - ref));
        max_dev_plain = std::max(
            max_dev_plain,
            std::abs(plain.forward(in).output()[1] - ref));
    }
    EXPECT_GT(max_dev_plain, 0.0) << "fault never excited";
    EXPECT_LE(max_dev_rep, 0.5 * max_dev_plain + 1e-9);
}

TEST(ReplicatedOutputMlp, VoteAgreesWithMedianVoteRule)
{
    // The voter path *is* core/spare's medianVote: recompute the
    // vote by hand from the raw extended-array activations and
    // require exact agreement.
    MlpTopology logical = logicalTopo();
    MlpTopology ext =
        ReplicatedOutputMlp::extendedTopology(logical, smallArray());
    Accelerator accel(smallArray(), ext);
    std::vector<std::vector<int>> groups = {{0, 3, 4}, {1, 5}, {2}};
    ReplicatedOutputMlp rep(accel, logical, groups);

    MlpWeights w(logical);
    Rng rng(13);
    w.initRandom(rng, 1.5);
    Rng inj(43);
    accel.injectDefects({UnitKind::Activation, Layer::Output, 0, 0}, 20,
                        inj);
    rep.setWeights(w);

    for (int t = 0; t < 20; ++t) {
        std::vector<double> in(4);
        for (double &v : in)
            v = rng.nextDouble();
        Activations voted = rep.forward(in);
        Activations raw = accel.forward(in);
        for (size_t k = 0; k < groups.size(); ++k) {
            std::vector<double> copies;
            for (int row : groups[k])
                copies.push_back(
                    raw.output()[static_cast<size_t>(row)]);
            EXPECT_DOUBLE_EQ(voted.output()[k], medianVote(copies))
                << "output " << k << " trial " << t;
        }
    }
}

TEST(ReplicatedOutputMlp, RejectsMalformedGroups)
{
    MlpTopology logical = logicalTopo();
    Accelerator accel(smallArray(), ReplicatedOutputMlp::extendedTopology(
                                        logical, smallArray()));
    EXPECT_EXIT(ReplicatedOutputMlp(accel, logical, {{0}, {1}}),
                ::testing::KilledBySignal(SIGABRT), "arity");
    EXPECT_EXIT(ReplicatedOutputMlp(accel, logical, {{3}, {1}, {2}}),
                ::testing::KilledBySignal(SIGABRT), "own row");
    EXPECT_EXIT(
        ReplicatedOutputMlp(accel, logical, {{0, 3}, {1, 3}, {2}}),
        ::testing::KilledBySignal(SIGABRT), "share");
    EXPECT_EXIT(
        ReplicatedOutputMlp(accel, logical, {{0, 6}, {1}, {2}}),
        ::testing::KilledBySignal(SIGABRT), "range");
}

TEST(ReplicatedOutputMlp, TrainableEndToEnd)
{
    Rng gen(17);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 120);
    MlpTopology logical = logicalTopo();
    Accelerator accel(smallArray(), ReplicatedOutputMlp::extendedTopology(
                                        logical, smallArray()));
    ReplicatedOutputMlp rep(accel, logical, {{0, 3, 4}, {1, 5}, {2}});
    Trainer trainer({6, 60, 0.2, 0.1});
    Rng rng(5);
    trainer.train(rep, ds, rng);
    EXPECT_GT(evalAccuracy(rep, ds), 0.8);
}

} // namespace
} // namespace dtann
