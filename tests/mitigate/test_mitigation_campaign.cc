/**
 * @file
 * Mitigation campaign: shape, cross-strategy fairness, and
 * bit-identical results for any worker count.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mitigate/campaign.hh"

namespace dtann {
namespace {

MitigationConfig
tinyConfig()
{
    MitigationConfig cfg;
    cfg.tasks = {"iris"};
    cfg.defectCounts = {0, 3};
    cfg.repetitions = 2;
    cfg.folds = 2;
    cfg.rows = 90;
    cfg.epochScale = 0.4;
    cfg.retrainScale = 0.3;
    cfg.seed = 7;
    cfg.array.inputs = 16;
    cfg.array.hidden = 8;
    cfg.array.outputs = 6; // 3 spare rows for the remap strategy
    cfg.bist.vectorsPerUnit = 6;
    return cfg;
}

TEST(MitigationCampaign, CurveShapeAndOrdering)
{
    MitigationConfig cfg = tinyConfig();
    auto curves = runMitigationCampaign(cfg);

    // Task-major, then config strategy order.
    ASSERT_EQ(curves.size(), cfg.strategies.size());
    for (size_t s = 0; s < curves.size(); ++s) {
        EXPECT_EQ(curves[s].task, "iris");
        EXPECT_EQ(curves[s].strategy, cfg.strategies[s]);
        ASSERT_EQ(curves[s].points.size(), cfg.defectCounts.size());
        for (size_t d = 0; d < cfg.defectCounts.size(); ++d) {
            const MitigationPoint &p = curves[s].points[d];
            EXPECT_EQ(p.defects, cfg.defectCounts[d]);
            EXPECT_GE(p.accuracy, 0.0);
            EXPECT_LE(p.accuracy, 1.0);
            EXPECT_GE(p.coverage, 0.0);
            EXPECT_LE(p.coverage, 1.0);
            EXPECT_GE(p.mitigated, 0.0);
        }
    }

    // The clean point of every strategy learns the task, and blind
    // strategies report full coverage by convention.
    for (const MitigationCurve &c : curves) {
        EXPECT_GT(c.points[0].accuracy, 0.6)
            << strategyName(c.strategy);
        if (c.strategy == Strategy::NoOp ||
            c.strategy == Strategy::RetrainOnly) {
            EXPECT_DOUBLE_EQ(c.points[0].coverage, 1.0);
        }
    }
}

TEST(MitigationCampaign, BitIdenticalAcrossThreadCounts)
{
    MitigationConfig cfg = tinyConfig();
    cfg.threads = 1;
    auto serial = runMitigationCampaign(cfg);
    cfg.threads = 4;
    auto parallel = runMitigationCampaign(cfg);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].task, parallel[i].task);
        EXPECT_EQ(serial[i].strategy, parallel[i].strategy);
        ASSERT_EQ(serial[i].points.size(), parallel[i].points.size());
        for (size_t d = 0; d < serial[i].points.size(); ++d) {
            const MitigationPoint &a = serial[i].points[d];
            const MitigationPoint &b = parallel[i].points[d];
            EXPECT_EQ(a.accuracy, b.accuracy);
            EXPECT_EQ(a.stddev, b.stddev);
            EXPECT_EQ(a.coverage, b.coverage);
            EXPECT_EQ(a.mitigated, b.mitigated);
        }
    }
}

TEST(MitigationCampaign, NoOpDegradesAtLeastAsMuchAsMitigations)
{
    // Not a strict theorem per-seed, but at the aggregate level the
    // blind no-mitigation lower bound must not beat retraining on
    // the clean point (identical weights, identical array).
    MitigationConfig cfg = tinyConfig();
    auto curves = runMitigationCampaign(cfg);
    const MitigationCurve *noop = nullptr, *retrain = nullptr;
    for (const MitigationCurve &c : curves) {
        if (c.strategy == Strategy::NoOp)
            noop = &c;
        if (c.strategy == Strategy::RetrainOnly)
            retrain = &c;
    }
    ASSERT_NE(noop, nullptr);
    ASSERT_NE(retrain, nullptr);
    // Retraining warm-starts from the baseline weights, so on the
    // defect-free array it cannot fall far below the no-op bound.
    EXPECT_GT(retrain->points[0].accuracy,
              noop->points[0].accuracy - 0.15);
}

TEST(MitigationCampaign, MapStrategiesReportMeasuredCoverage)
{
    MitigationConfig cfg = tinyConfig();
    auto curves = runMitigationCampaign(cfg);
    for (const MitigationCurve &c : curves) {
        if (c.strategy != Strategy::BypassFaulty &&
            c.strategy != Strategy::RemapToSpares)
            continue;
        // With defects present the diagnosis coverage is a measured
        // quantity in [0, 1]; with none it is 1.0 by convention.
        EXPECT_DOUBLE_EQ(c.points[0].coverage, 1.0);
        EXPECT_GE(c.points[1].coverage, 0.0);
        EXPECT_LE(c.points[1].coverage, 1.0);
    }
}

TEST(MitigationCampaign, StarvedShardReportsZeroSamplesNotNaN)
{
    // Cell order is strategy-major within a (task, defect count):
    // with 2 strategies x 2 reps and shardCount 4, shard 0 computes
    // only (NoOp, rep 0) — RetrainOnly is starved entirely. The
    // aggregate must say so (samples == 0, all-zero means), never
    // leak the uncomputed placeholder outcomes or emit NaN.
    MitigationConfig cfg = tinyConfig();
    cfg.strategies = {Strategy::NoOp, Strategy::RetrainOnly};
    cfg.defectCounts = {3};
    cfg.shardCount = 4;
    cfg.shardIndex = 0;
    auto curves = runMitigationCampaign(cfg);
    ASSERT_EQ(curves.size(), 2u);
    ASSERT_EQ(curves[0].points.size(), 1u);

    const MitigationPoint &fed = curves[0].points[0];
    EXPECT_EQ(fed.samples, 1);
    EXPECT_GT(fed.accuracy, 0.0);

    const MitigationPoint &starved = curves[1].points[0];
    EXPECT_EQ(starved.samples, 0);
    EXPECT_EQ(starved.accuracy, 0.0);
    EXPECT_EQ(starved.stddev, 0.0);
    EXPECT_EQ(starved.coverage, 0.0);
    EXPECT_EQ(starved.mitigated, 0.0);
    EXPECT_FALSE(std::isnan(starved.accuracy));
    EXPECT_FALSE(std::isnan(starved.stddev));
    EXPECT_FALSE(std::isnan(curves[1].paretoAccuracy));
    EXPECT_EQ(curves[1].paretoAccuracy, 0.0);

    std::string j = curves[1].toJson();
    EXPECT_NE(j.find("\"count\":0"), std::string::npos);
    EXPECT_EQ(j.find("nan"), std::string::npos);
    EXPECT_EQ(j.find("inf"), std::string::npos);
}

TEST(MitigationCampaign, CurvesCarryCostAndPareto)
{
    MitigationConfig cfg = tinyConfig();
    auto curves = runMitigationCampaign(cfg);
    for (const MitigationCurve &c : curves) {
        // Costs must match the standalone cost model for this
        // (strategy, array, task) triple...
        MitigationCost expect = mitigationCost(
            c.strategy, cfg.array, MlpTopology{4, 6, 3}, cfg.bist);
        EXPECT_EQ(c.cost.spareRows, expect.spareRows);
        EXPECT_EQ(c.cost.missionTransistors, expect.missionTransistors);
        EXPECT_EQ(c.cost.testTransistors, expect.testTransistors);
        EXPECT_DOUBLE_EQ(c.cost.areaOverhead, expect.areaOverhead);
        EXPECT_DOUBLE_EQ(c.cost.energyOverhead, expect.energyOverhead);

        // ...and obey the accounting rules: only diagnosis-driven
        // strategies spend scan/BIST budget, only spare-consuming
        // ones are charged rows.
        bool blind = c.strategy == Strategy::NoOp ||
            c.strategy == Strategy::RetrainOnly ||
            c.strategy == Strategy::ClampActivations;
        EXPECT_EQ(c.cost.bistVectorsPerUnit,
                  blind ? 0 : cfg.bist.vectorsPerUnit);
        EXPECT_EQ(c.cost.testTransistors > 0, !blind);
        bool spares = c.strategy == Strategy::RemapToSpares ||
            c.strategy == Strategy::ReplicateCritical;
        EXPECT_EQ(c.cost.spareRows, spares ? 3 : 0);
        EXPECT_GE(c.cost.areaOverhead, 0.0);
        EXPECT_GE(c.cost.energyOverhead, 0.0);
        EXPECT_LT(c.cost.areaOverhead, 1.0)
            << "mitigation logic must stay a fraction of the array";

        // The Pareto y coordinate averages the defective points.
        EXPECT_DOUBLE_EQ(c.paretoAccuracy, c.points[1].accuracy);
    }

    // Free strategies cost nothing; hardware-backed ones don't.
    for (const MitigationCurve &c : curves) {
        bool free = c.strategy == Strategy::NoOp ||
            c.strategy == Strategy::RetrainOnly;
        EXPECT_EQ(c.cost.missionTransistors == 0, free)
            << strategyName(c.strategy);
    }
}

TEST(MitigationCurve, JsonCarriesStrategyAndPoints)
{
    MitigationCurve c;
    c.task = "iris";
    c.strategy = Strategy::BypassFaulty;
    c.points.push_back({3, 0.9, 0.01, 0.75, 2.0, 5});
    c.cost.spareRows = 2;
    c.cost.areaOverhead = 0.125;
    c.paretoAccuracy = 0.9;
    std::string j = c.toJson();
    EXPECT_NE(j.find("\"task\":\"iris\""), std::string::npos);
    EXPECT_NE(j.find("\"strategy\":\"bypass\""), std::string::npos);
    EXPECT_NE(j.find("\"defects\":3"), std::string::npos);
    EXPECT_NE(j.find("\"coverage\":"), std::string::npos);
    EXPECT_NE(j.find("\"count\":5"), std::string::npos);
    EXPECT_NE(j.find("\"cost\":{\"spare_rows\":2"), std::string::npos);
    EXPECT_NE(j.find("\"pareto\":{\"accuracy\":0.9"),
              std::string::npos);
    EXPECT_NE(j.find("\"area_overhead\":0.125"), std::string::npos);

    std::string arr = toJson(std::vector<MitigationCurve>{c, c});
    EXPECT_EQ(arr.front(), '[');
    EXPECT_EQ(arr.back(), ']');
}

} // namespace
} // namespace dtann
