/**
 * @file
 * Mitigation campaign: shape, cross-strategy fairness, and
 * bit-identical results for any worker count.
 */

#include <gtest/gtest.h>

#include "mitigate/campaign.hh"

namespace dtann {
namespace {

MitigationConfig
tinyConfig()
{
    MitigationConfig cfg;
    cfg.tasks = {"iris"};
    cfg.defectCounts = {0, 3};
    cfg.repetitions = 2;
    cfg.folds = 2;
    cfg.rows = 90;
    cfg.epochScale = 0.4;
    cfg.retrainScale = 0.3;
    cfg.seed = 7;
    cfg.array.inputs = 16;
    cfg.array.hidden = 8;
    cfg.array.outputs = 6; // 3 spare rows for the remap strategy
    cfg.bist.vectorsPerUnit = 6;
    return cfg;
}

TEST(MitigationCampaign, CurveShapeAndOrdering)
{
    MitigationConfig cfg = tinyConfig();
    auto curves = runMitigationCampaign(cfg);

    // Task-major, then config strategy order.
    ASSERT_EQ(curves.size(), cfg.strategies.size());
    for (size_t s = 0; s < curves.size(); ++s) {
        EXPECT_EQ(curves[s].task, "iris");
        EXPECT_EQ(curves[s].strategy, cfg.strategies[s]);
        ASSERT_EQ(curves[s].points.size(), cfg.defectCounts.size());
        for (size_t d = 0; d < cfg.defectCounts.size(); ++d) {
            const MitigationPoint &p = curves[s].points[d];
            EXPECT_EQ(p.defects, cfg.defectCounts[d]);
            EXPECT_GE(p.accuracy, 0.0);
            EXPECT_LE(p.accuracy, 1.0);
            EXPECT_GE(p.coverage, 0.0);
            EXPECT_LE(p.coverage, 1.0);
            EXPECT_GE(p.mitigated, 0.0);
        }
    }

    // The clean point of every strategy learns the task, and blind
    // strategies report full coverage by convention.
    for (const MitigationCurve &c : curves) {
        EXPECT_GT(c.points[0].accuracy, 0.6)
            << strategyName(c.strategy);
        if (c.strategy == Strategy::NoOp ||
            c.strategy == Strategy::RetrainOnly) {
            EXPECT_DOUBLE_EQ(c.points[0].coverage, 1.0);
        }
    }
}

TEST(MitigationCampaign, BitIdenticalAcrossThreadCounts)
{
    MitigationConfig cfg = tinyConfig();
    cfg.threads = 1;
    auto serial = runMitigationCampaign(cfg);
    cfg.threads = 4;
    auto parallel = runMitigationCampaign(cfg);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].task, parallel[i].task);
        EXPECT_EQ(serial[i].strategy, parallel[i].strategy);
        ASSERT_EQ(serial[i].points.size(), parallel[i].points.size());
        for (size_t d = 0; d < serial[i].points.size(); ++d) {
            const MitigationPoint &a = serial[i].points[d];
            const MitigationPoint &b = parallel[i].points[d];
            EXPECT_EQ(a.accuracy, b.accuracy);
            EXPECT_EQ(a.stddev, b.stddev);
            EXPECT_EQ(a.coverage, b.coverage);
            EXPECT_EQ(a.mitigated, b.mitigated);
        }
    }
}

TEST(MitigationCampaign, NoOpDegradesAtLeastAsMuchAsMitigations)
{
    // Not a strict theorem per-seed, but at the aggregate level the
    // blind no-mitigation lower bound must not beat retraining on
    // the clean point (identical weights, identical array).
    MitigationConfig cfg = tinyConfig();
    auto curves = runMitigationCampaign(cfg);
    const MitigationCurve *noop = nullptr, *retrain = nullptr;
    for (const MitigationCurve &c : curves) {
        if (c.strategy == Strategy::NoOp)
            noop = &c;
        if (c.strategy == Strategy::RetrainOnly)
            retrain = &c;
    }
    ASSERT_NE(noop, nullptr);
    ASSERT_NE(retrain, nullptr);
    // Retraining warm-starts from the baseline weights, so on the
    // defect-free array it cannot fall far below the no-op bound.
    EXPECT_GT(retrain->points[0].accuracy,
              noop->points[0].accuracy - 0.15);
}

TEST(MitigationCampaign, MapStrategiesReportMeasuredCoverage)
{
    MitigationConfig cfg = tinyConfig();
    auto curves = runMitigationCampaign(cfg);
    for (const MitigationCurve &c : curves) {
        if (c.strategy != Strategy::BypassFaulty &&
            c.strategy != Strategy::RemapToSpares)
            continue;
        // With defects present the diagnosis coverage is a measured
        // quantity in [0, 1]; with none it is 1.0 by convention.
        EXPECT_DOUBLE_EQ(c.points[0].coverage, 1.0);
        EXPECT_GE(c.points[1].coverage, 0.0);
        EXPECT_LE(c.points[1].coverage, 1.0);
    }
}

TEST(MitigationCurve, JsonCarriesStrategyAndPoints)
{
    MitigationCurve c;
    c.task = "iris";
    c.strategy = Strategy::BypassFaulty;
    c.points.push_back({3, 0.9, 0.01, 0.75, 2.0});
    std::string j = c.toJson();
    EXPECT_NE(j.find("\"task\":\"iris\""), std::string::npos);
    EXPECT_NE(j.find("\"strategy\":\"bypass\""), std::string::npos);
    EXPECT_NE(j.find("\"defects\":3"), std::string::npos);
    EXPECT_NE(j.find("\"coverage\":"), std::string::npos);

    std::string arr = toJson(std::vector<MitigationCurve>{c, c});
    EXPECT_EQ(arr.front(), '[');
    EXPECT_EQ(arr.back(), ']');
}

} // namespace
} // namespace dtann
