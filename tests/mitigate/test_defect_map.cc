/**
 * @file
 * DefectMap bookkeeping and diagnosis scoring.
 */

#include <gtest/gtest.h>

#include "core/injector.hh"
#include "mitigate/defect_map.hh"

namespace dtann {
namespace {

UnitSite
site(UnitKind k, Layer l, int neuron, int index)
{
    return UnitSite{k, l, neuron, index};
}

TEST(DefectMap, MarkSuspectIsIdempotentAndOrdered)
{
    DefectMap map;
    EXPECT_TRUE(map.empty());

    UnitSite a = site(UnitKind::Multiplier, Layer::Hidden, 2, 5);
    UnitSite b = site(UnitKind::AdderStage, Layer::Output, 0, 1);
    map.markSuspect(b);
    map.markSuspect(a);
    map.markSuspect(a); // idempotent
    EXPECT_EQ(map.size(), 2u);
    EXPECT_TRUE(map.suspect(a));
    EXPECT_TRUE(map.suspect(b));
    EXPECT_FALSE(
        map.suspect(site(UnitKind::Multiplier, Layer::Hidden, 2, 6)));

    std::vector<UnitSite> all = map.suspects();
    ASSERT_EQ(all.size(), 2u);
    EXPECT_TRUE(all[0] < all[1]) << "suspects() must be sorted";
}

TEST(DefectMap, LayerFiltersAndNeuronProjection)
{
    DefectMap map;
    map.markSuspect(site(UnitKind::Multiplier, Layer::Hidden, 1, 0));
    map.markSuspect(site(UnitKind::AdderStage, Layer::Output, 3, 2));
    map.markSuspect(site(UnitKind::Activation, Layer::Output, 3, 0));
    map.markSuspect(site(UnitKind::WeightLatch, Layer::Output, 0, 7));

    EXPECT_EQ(map.suspectsIn(Layer::Hidden).size(), 1u);
    EXPECT_EQ(map.suspectsIn(Layer::Output).size(), 3u);
    for (const UnitSite &s : map.suspectsIn(Layer::Output))
        EXPECT_EQ(s.layer, Layer::Output);

    // Neuron 3 hosts two suspects but appears once; sorted order.
    std::vector<int> neurons = map.suspectNeurons(Layer::Output);
    EXPECT_EQ(neurons, (std::vector<int>{0, 3}));
    EXPECT_EQ(map.suspectNeurons(Layer::Hidden),
              (std::vector<int>{1}));
}

TEST(DefectMap, FromGroundTruthMatchesInjectedSites)
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    Accelerator accel(cfg, {12, 4, 3});
    Rng rng(11);
    DefectInjector inj(accel, SitePool::all());
    inj.inject(5, rng);

    DefectMap map = DefectMap::fromGroundTruth(accel);
    std::vector<UnitSite> truth = accel.faultySites();
    EXPECT_EQ(map.size(), truth.size());
    for (const UnitSite &s : truth)
        EXPECT_TRUE(map.suspect(s));
}

TEST(DiagnosisReport, CoverageCountsAndEdgeCases)
{
    UnitSite a = site(UnitKind::Multiplier, Layer::Hidden, 0, 0);
    UnitSite b = site(UnitKind::AdderStage, Layer::Hidden, 1, 3);
    UnitSite c = site(UnitKind::Activation, Layer::Output, 2, 0);

    DefectMap map;
    map.markSuspect(a);
    map.markSuspect(c); // false positive (not in truth)

    DiagnosisReport r = scoreDiagnosis(map, {a, b});
    EXPECT_EQ(r.truePositives, 1);
    EXPECT_EQ(r.falsePositives, 1);
    EXPECT_EQ(r.falseNegatives, 1);
    EXPECT_DOUBLE_EQ(r.coverage(), 0.5);
    EXPECT_DOUBLE_EQ(r.falseNegativeRate(), 0.5);

    // No true faults: coverage is 1.0 by convention.
    DiagnosisReport clean = scoreDiagnosis(DefectMap(), {});
    EXPECT_DOUBLE_EQ(clean.coverage(), 1.0);
    EXPECT_DOUBLE_EQ(clean.falseNegativeRate(), 0.0);
}

TEST(DefectMap, JsonExportsSitesAndScores)
{
    DefectMap map;
    map.markSuspect(site(UnitKind::Multiplier, Layer::Hidden, 2, 5));
    std::string j = map.toJson();
    EXPECT_EQ(j.front(), '[');
    EXPECT_EQ(j.back(), ']');
    EXPECT_NE(j.find("mult[hid n2 i5]"), std::string::npos);

    DiagnosisReport r;
    r.unitsTested = 10;
    r.truePositives = 3;
    r.falseNegatives = 1;
    std::string rj = r.toJson();
    EXPECT_EQ(rj.front(), '{');
    EXPECT_NE(rj.find("\"coverage\":"), std::string::npos);
    EXPECT_NE(rj.find("\"units_tested\":10"), std::string::npos);
}

} // namespace
} // namespace dtann
