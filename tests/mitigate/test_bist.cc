/**
 * @file
 * BIST diagnosis: budgets, determinism, and scoring against the
 * injector's ground truth.
 */

#include <gtest/gtest.h>

#include "mitigate/bist.hh"

namespace dtann {
namespace {

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg;
    cfg.inputs = 12;
    cfg.hidden = 4;
    cfg.outputs = 3;
    return cfg;
}

TEST(Bist, CleanArrayHasNoFalsePositives)
{
    AcceleratorConfig cfg = smallConfig();
    Accelerator accel(cfg, {12, 4, 3});
    BistConfig bist;
    bist.vectorsPerUnit = 4;
    Rng rng(3);
    BistResult r = runBist(accel, bist, rng);
    // Clean units answer with the native reference: a mismatch is
    // structurally impossible, whatever the vector budget.
    EXPECT_TRUE(r.map.empty());
    EXPECT_EQ(r.unitsTested,
              enumerateSites(cfg, SitePool::all()).size());
    EXPECT_EQ(r.vectorsApplied, r.unitsTested * 4u);
}

TEST(Bist, FalsePositivesAreStructurallyZeroWithDefects)
{
    Accelerator accel(smallConfig(), {12, 4, 3});
    Rng irng(17);
    DefectInjector inj(accel, SitePool::all());
    inj.inject(6, irng);

    BistConfig bist;
    bist.vectorsPerUnit = 8;
    Rng rng(5);
    DiagnosisReport report = diagnose(accel, bist, rng);
    EXPECT_EQ(report.falsePositives, 0);
    EXPECT_EQ(report.truePositives + report.falseNegatives, 6);
    EXPECT_GE(report.coverage(), 0.0);
    EXPECT_LE(report.coverage(), 1.0);
}

TEST(Bist, HeavilyDamagedUnitsAreDiagnosed)
{
    // 15 transistor defects in one unit all but guarantee a broken
    // function; a modest vector budget must find most of them.
    Accelerator accel(smallConfig(), {12, 4, 3});
    Rng irng(23);
    DefectInjector inj(accel, SitePool::all());
    inj.inject(4, irng);
    for (const UnitSite &s : accel.faultySites())
        accel.injectDefects(s, 14, irng);

    BistConfig bist;
    bist.vectorsPerUnit = 16;
    Rng rng(7);
    DefectMap map;
    DiagnosisReport report = diagnose(accel, bist, rng, &map);
    EXPECT_GT(report.truePositives, 0);
    EXPECT_GT(report.coverage(), 0.5);
    EXPECT_EQ(map.size(),
              static_cast<size_t>(report.truePositives));
}

TEST(Bist, OracleMapScoresPerfectCoverage)
{
    Accelerator accel(smallConfig(), {12, 4, 3});
    Rng irng(31);
    DefectInjector inj(accel, SitePool::all());
    inj.inject(5, irng);

    DefectMap oracle = DefectMap::fromGroundTruth(accel);
    DiagnosisReport r = scoreDiagnosis(oracle, accel.faultySites());
    EXPECT_DOUBLE_EQ(r.coverage(), 1.0);
    EXPECT_EQ(r.falsePositives, 0);
    EXPECT_EQ(r.falseNegatives, 0);
}

TEST(Bist, DeterministicForEqualSeeds)
{
    auto run = [](uint64_t bist_seed) {
        Accelerator accel(smallConfig(), {12, 4, 3});
        Rng irng(47);
        DefectInjector inj(accel, SitePool::all());
        inj.inject(5, irng);
        BistConfig bist;
        bist.vectorsPerUnit = 6;
        Rng rng(bist_seed);
        return runBist(accel, bist, rng).map.suspects();
    };
    EXPECT_EQ(run(9), run(9));
}

TEST(Bist, ProbesAreResetAfterDiagnosis)
{
    Accelerator accel(smallConfig(), {12, 4, 3});
    Rng irng(53);
    DefectInjector inj(accel, SitePool::all());
    inj.inject(3, irng);

    BistConfig bist;
    bist.vectorsPerUnit = 8;
    Rng rng(2);
    runBist(accel, bist, rng);
    for (const UnitSite &s : accel.faultySites())
        EXPECT_EQ(accel.probe(s).amplitude.count(), 0u)
            << "BIST probing must not leak into " << s.describe();
}

TEST(Bist, PoolRestrictsTestedUnits)
{
    AcceleratorConfig cfg = smallConfig();
    Accelerator accel(cfg, {12, 4, 3});
    BistConfig bist;
    bist.pool = SitePool::outputCritical();
    bist.vectorsPerUnit = 2;
    Rng rng(1);
    BistResult r = runBist(accel, bist, rng);
    EXPECT_EQ(r.unitsTested,
              enumerateSites(cfg, SitePool::outputCritical()).size());
    EXPECT_LT(r.unitsTested,
              enumerateSites(cfg, SitePool::all()).size());
}

} // namespace
} // namespace dtann
