/**
 * @file
 * Differential suite for the round-2 strategies: ClampActivations
 * and ReplicateCritical race NoOp/RetrainOnly on identical
 * injection streams, and the whole campaign export must be
 * bit-identical across worker thread counts and DTANN_LANES plane
 * widths. (The replicate voter's agreement with the spare-array
 * median voter is covered in test_replicate.cc.)
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "mitigate/campaign.hh"

namespace dtann {
namespace {

/** The round-2 strategies against their blind baselines. */
MitigationConfig
diffConfig()
{
    MitigationConfig cfg;
    cfg.tasks = {"iris"};
    cfg.defectCounts = {0, 3};
    cfg.strategies = {Strategy::NoOp, Strategy::RetrainOnly,
                      Strategy::ClampActivations,
                      Strategy::ReplicateCritical};
    cfg.repetitions = 2;
    cfg.folds = 2;
    cfg.rows = 90;
    cfg.epochScale = 0.2;
    cfg.retrainScale = 0.2;
    cfg.seed = 31;
    cfg.array.inputs = 16;
    cfg.array.hidden = 8;
    cfg.array.outputs = 6;
    cfg.bist.vectorsPerUnit = 6;
    return cfg;
}

/**
 * Drop every "sim":{...} telemetry object from a campaign export.
 * Batch sweep counts, lane slots and occupancy are definitionally
 * lane-width-dependent throughput metrics; all *result* fields
 * (accuracies, stddev, coverage, cost, Pareto) stay in the string
 * and are compared bit for bit.
 */
std::string
stripSimTelemetry(std::string json)
{
    const std::string key = ",\"sim\":{";
    for (size_t at = json.find(key); at != std::string::npos;
         at = json.find(key, at)) {
        size_t close = json.find('}', at); // sim objects are flat
        json.erase(at, close - at + 1);
    }
    return json;
}

TEST(MitigationDifferential, BitIdenticalAcrossThreadsAndLanes)
{
    // Thread count and lane width are pure throughput knobs: the
    // exported results (accuracies, coverage, cost, Pareto —
    // everything except sim telemetry) must not move by a bit.
    MitigationConfig cfg = diffConfig();
    auto runAt = [&](int threads, const char *lanes) {
        if (lanes != nullptr)
            setenv("DTANN_LANES", lanes, 1);
        else
            unsetenv("DTANN_LANES");
        cfg.threads = threads;
        std::string json =
            stripSimTelemetry(toJson(runMitigationCampaign(cfg)));
        unsetenv("DTANN_LANES");
        return json;
    };
    std::string oracle = runAt(1, "64");
    EXPECT_EQ(runAt(4, "64"), oracle) << "thread count leaked";
    EXPECT_EQ(runAt(1, "256"), oracle) << "lane width leaked";
    EXPECT_EQ(runAt(4, "512"), oracle)
        << "thread x lane combination leaked";
    EXPECT_EQ(runAt(4, nullptr), oracle) << "auto lane width leaked";
}

TEST(MitigationDifferential, InjectionStreamIgnoresStrategyLineup)
{
    // Every strategy of a (task, defect count, rep) cell must face
    // identical physical defects. Observable consequence: a
    // strategy's curve cannot depend on which *other* strategies
    // race alongside it — if the injection stream carried a strategy
    // coordinate, reordering or shrinking the lineup would shift it.
    MitigationConfig cfg = diffConfig();
    auto curveFor = [](const std::vector<MitigationCurve> &curves,
                       Strategy s) -> const MitigationCurve * {
        for (const MitigationCurve &c : curves)
            if (c.strategy == s)
                return &c;
        return nullptr;
    };
    auto full = runMitigationCampaign(cfg);

    MitigationConfig solo = cfg;
    solo.strategies = {Strategy::ClampActivations};
    auto alone = runMitigationCampaign(solo);

    MitigationConfig pair = cfg;
    pair.strategies = {Strategy::ReplicateCritical, Strategy::NoOp};
    auto reordered = runMitigationCampaign(pair);

    for (Strategy s :
         {Strategy::ClampActivations, Strategy::ReplicateCritical,
          Strategy::NoOp}) {
        const MitigationCurve *a = curveFor(full, s);
        const MitigationCurve *b = s == Strategy::ClampActivations
            ? curveFor(alone, s)
            : curveFor(reordered, s);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr) << strategyName(s);
        ASSERT_EQ(a->points.size(), b->points.size());
        for (size_t d = 0; d < a->points.size(); ++d) {
            EXPECT_EQ(a->points[d].accuracy, b->points[d].accuracy)
                << strategyName(s) << " defects "
                << a->points[d].defects;
            EXPECT_EQ(a->points[d].stddev, b->points[d].stddev);
            EXPECT_EQ(a->points[d].coverage, b->points[d].coverage);
            EXPECT_EQ(a->points[d].mitigated, b->points[d].mitigated);
        }
    }
}

TEST(MitigationDifferential, RoundTwoStrategiesBehaveOnBothPoints)
{
    MitigationConfig cfg = diffConfig();
    auto curves = runMitigationCampaign(cfg);
    ASSERT_EQ(curves.size(), cfg.strategies.size());
    for (const MitigationCurve &c : curves) {
        if (c.strategy != Strategy::ClampActivations &&
            c.strategy != Strategy::ReplicateCritical)
            continue;
        // Clean point: the new forward paths (clamp window /
        // replicated vote) must not break a defect-free array.
        EXPECT_GT(c.points[0].accuracy, 0.6)
            << strategyName(c.strategy);
        // Defective point: still a valid probability.
        EXPECT_GE(c.points[1].accuracy, 0.0);
        EXPECT_LE(c.points[1].accuracy, 1.0);
        if (c.strategy == Strategy::ClampActivations) {
            // Blind: full coverage by contract, every physical
            // activation unit instrumented.
            EXPECT_DOUBLE_EQ(c.points[1].coverage, 1.0);
            EXPECT_DOUBLE_EQ(
                c.points[1].mitigated,
                static_cast<double>(cfg.array.hidden +
                                    cfg.array.outputs));
        } else {
            EXPECT_GE(c.points[1].coverage, 0.0);
            EXPECT_LE(c.points[1].coverage, 1.0);
        }
    }
}

} // namespace
} // namespace dtann
