/**
 * @file
 * Mitigation strategies: remap planning, bypass bookkeeping, and
 * the Mitigator interface contracts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "ann/trainer.hh"
#include "core/campaign.hh"
#include "data/synth_uci.hh"
#include "mitigate/mitigator.hh"
#include "mitigate/remap.hh"

namespace dtann {
namespace {

/** Shared tiny task: iris on a 16x8x6 array (3 spare output rows). */
struct Fixture
{
    AcceleratorConfig array;
    MlpTopology logical;
    Dataset ds;
    Hyper hyper{6, 40, 0.2, 0.1};
    MlpWeights baseline;

    Fixture() : logical{4, 6, 3}, baseline(logical)
    {
        array.inputs = 16;
        array.hidden = 8;
        array.outputs = 6;
        Rng rng(101);
        ds = makeSyntheticTask(uciTask("iris"), rng, 90);
        Accelerator accel(array, logical);
        Rng trng(102);
        baseline = Trainer(hyper).train(accel, ds, trng);
    }

    MitigationSetup setup()
    {
        BistConfig bist;
        bist.vectorsPerUnit = 16;
        return MitigationSetup{array, logical, ds,
                               retrainHyper(hyper, 0.3),
                               baseline,  2,      bist};
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
injectNothing(HardwareBackend &)
{
}

/** Heavy defects: every drawn unit gets 14 extra transistor faults. */
std::function<void(HardwareBackend &)>
heavyInjector(int count, uint64_t seed,
              SitePool pool = SitePool::all())
{
    return [count, seed, pool](HardwareBackend &accel) {
        Rng rng(seed);
        DefectInjector inj(accel, pool);
        inj.inject(count, rng);
        for (const UnitSite &s : accel.faultySites())
            accel.injectDefects(s, 14, rng);
    };
}

TEST(Strategy, NamesAreStable)
{
    EXPECT_STREQ(strategyName(Strategy::NoOp), "noop");
    EXPECT_STREQ(strategyName(Strategy::RetrainOnly), "retrain");
    EXPECT_STREQ(strategyName(Strategy::BypassFaulty), "bypass");
    EXPECT_STREQ(strategyName(Strategy::RemapToSpares), "remap");
    EXPECT_STREQ(strategyName(Strategy::ClampActivations), "clamp");
    EXPECT_STREQ(strategyName(Strategy::ReplicateCritical),
                 "replicate");
}

TEST(Strategy, AllStrategiesEnumeratesEveryName)
{
    EXPECT_EQ(allStrategies().size(), 6u);
    // The list drives the default campaign racing order and the
    // spec parser; every entry must round-trip through its name.
    for (Strategy s : allStrategies()) {
        Strategy parsed;
        ASSERT_TRUE(strategyFromName(strategyName(s), parsed));
        EXPECT_EQ(parsed, s);
    }
    EXPECT_EQ(strategyNameList(),
              "noop, retrain, bypass, remap, clamp, replicate");
    Strategy unused;
    EXPECT_FALSE(strategyFromName("pray", unused));
}

TEST(Strategy, FactoryRoundTrips)
{
    for (Strategy s : allStrategies()) {
        auto m = makeMitigator(s);
        ASSERT_NE(m, nullptr);
        EXPECT_EQ(m->kind(), s);
        EXPECT_EQ(m->name(), strategyName(s));
    }
}

TEST(PlanOutputRemap, CleanMapIsIdentity)
{
    Fixture &f = fixture();
    std::vector<int> plan =
        planOutputRemap(DefectMap(), f.logical, f.array);
    EXPECT_EQ(plan, (std::vector<int>{0, 1, 2}));
}

TEST(PlanOutputRemap, FaultyRowMovesToLowestCleanSpare)
{
    Fixture &f = fixture();
    DefectMap map;
    map.markSuspect({UnitKind::AdderStage, Layer::Output, 1, 0});
    EXPECT_EQ(planOutputRemap(map, f.logical, f.array),
              (std::vector<int>{0, 3, 2}));

    // A faulty spare is skipped in favour of the next clean one.
    map.markSuspect({UnitKind::Activation, Layer::Output, 3, 0});
    EXPECT_EQ(planOutputRemap(map, f.logical, f.array),
              (std::vector<int>{0, 4, 2}));

    // Hidden-layer suspects do not trigger output remapping.
    DefectMap hidden_only;
    hidden_only.markSuspect({UnitKind::Multiplier, Layer::Hidden, 1, 2});
    EXPECT_EQ(planOutputRemap(hidden_only, f.logical, f.array),
              (std::vector<int>{0, 1, 2}));
}

TEST(PlanOutputRemap, DegradesGracefullyWhenSparesExhausted)
{
    Fixture &f = fixture();
    DefectMap map; // every physical output row faulty
    for (int n = 0; n < f.array.outputs; ++n)
        map.markSuspect({UnitKind::Activation, Layer::Output, n, 0});
    // No clean spare exists: faulty rows keep their position.
    EXPECT_EQ(planOutputRemap(map, f.logical, f.array),
              (std::vector<int>{0, 1, 2}));
}

TEST(RemappedOutputMlp, CleanForwardIsInvariantToRowChoice)
{
    Fixture &f = fixture();
    MlpTopology ext =
        RemappedOutputMlp::extendedTopology(f.logical, f.array);
    EXPECT_EQ(ext.outputs, f.array.outputs);

    Accelerator accel(f.array, ext);
    RemappedOutputMlp identity(accel, f.logical, {0, 1, 2});
    RemappedOutputMlp steered(accel, f.logical, {3, 1, 5});
    EXPECT_EQ(identity.remappedCount(), 0);
    EXPECT_EQ(steered.remappedCount(), 2);

    Rng rng(7);
    std::vector<double> in(4);
    for (int trial = 0; trial < 10; ++trial) {
        for (double &v : in)
            v = rng.nextDouble();
        identity.setWeights(f.baseline);
        Activations a = identity.forward(in);
        steered.setWeights(f.baseline);
        Activations b = steered.forward(in);
        // On a defect-free array a spare row computes exactly what
        // the original row would have.
        EXPECT_EQ(a.output(), b.output());
    }
}

TEST(Mitigator, NoOpOnCleanArrayMatchesBaseline)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(11);
    MitigationOutcome out =
        makeMitigator(Strategy::NoOp)->run(setup, injectNothing, rng);

    Accelerator accel(f.array, f.logical);
    accel.setWeights(f.baseline);
    EXPECT_DOUBLE_EQ(out.accuracy, evalAccuracy(accel, f.ds));
    EXPECT_DOUBLE_EQ(out.coverage, 1.0);
    EXPECT_EQ(out.diagnosed, 0);
    EXPECT_EQ(out.mitigatedUnits, 0);
    EXPECT_GT(out.accuracy, 0.6) << "baseline should learn iris";
}

TEST(Mitigator, RetrainOnlyHandlesCleanAndFaultyArrays)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(13);
    MitigationOutcome clean = makeMitigator(Strategy::RetrainOnly)
                                  ->run(setup, injectNothing, rng);
    EXPECT_GT(clean.accuracy, 0.6);

    Rng rng2(13);
    MitigationOutcome faulty =
        makeMitigator(Strategy::RetrainOnly)
            ->run(setup, heavyInjector(3, 77), rng2);
    EXPECT_GE(faulty.accuracy, 0.0);
    EXPECT_LE(faulty.accuracy, 1.0);
}

TEST(Mitigator, BypassReportsDiagnosisAndBypassCounts)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(17);
    MitigationOutcome out =
        makeMitigator(Strategy::BypassFaulty)
            ->run(setup, heavyInjector(4, 78), rng);
    EXPECT_GT(out.diagnosed, 0)
        << "heavy defects must show up in the map";
    EXPECT_GE(out.coverage, 0.0);
    EXPECT_LE(out.coverage, 1.0);
    // Output-layer activations are never bypassed, so the bypass
    // count can undershoot the diagnosis count but never exceed it.
    EXPECT_LE(out.mitigatedUnits, out.diagnosed);
    EXPECT_GE(out.accuracy, 0.0);
    EXPECT_LE(out.accuracy, 1.0);
}

TEST(Mitigator, RemapSteersDiagnosedOutputRows)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(19);
    // Deterministically destroy logical output row 1's activation.
    auto inject = [](HardwareBackend &accel) {
        Rng ir(79);
        accel.injectDefects({UnitKind::Activation, Layer::Output, 1, 0},
                            15, ir);
    };
    MitigationOutcome out =
        makeMitigator(Strategy::RemapToSpares)->run(setup, inject, rng);
    EXPECT_GT(out.diagnosed, 0);
    EXPECT_GE(out.mitigatedUnits, 1)
        << "a diagnosed output row should be remapped to a spare";
    EXPECT_GE(out.accuracy, 0.0);
    EXPECT_LE(out.accuracy, 1.0);
}

TEST(PruneMask, MapsBypassedUnitsToLogicalSynapses)
{
    Fixture &f = fixture();
    Accelerator accel(f.array, f.logical);

    // A hidden-layer multiplier prunes its own synapse; the physical
    // bias column (index == cfg.inputs) maps to the logical bias.
    accel.bypassUnit({UnitKind::Multiplier, Layer::Hidden, 1, 2});
    accel.bypassUnit({UnitKind::WeightLatch, Layer::Hidden, 1,
                      f.array.inputs});
    // Output adder stage t accumulates synapse t+1's product.
    accel.bypassUnit({UnitKind::AdderStage, Layer::Output, 0, 1});
    // A silenced hidden neuron prunes every output synapse reading it.
    accel.bypassUnit({UnitKind::Activation, Layer::Hidden, 3, 0});
    // Physical rows beyond the logical mapping carry no weight.
    accel.bypassUnit({UnitKind::Multiplier, Layer::Hidden, 7, 0});
    // Synapses beyond the logical fan-in (but not the bias) are
    // zero-weight padding.
    accel.bypassUnit({UnitKind::Multiplier, Layer::Hidden, 0, 9});

    std::vector<PrunedSynapse> mask =
        pruneMaskForBypasses(accel, f.logical);
    std::vector<PrunedSynapse> expect = {
        {0, 1, 2},
        {0, 1, f.logical.inputs}, // bias
        {1, 0, 2},
        {1, 0, 3},
        {1, 1, 3},
        {1, 2, 3},
    };
    auto key = [](const PrunedSynapse &p) {
        return std::tuple<size_t, int, int>{p.stage, p.neuron, p.input};
    };
    std::sort(expect.begin(), expect.end(),
              [&](const PrunedSynapse &a, const PrunedSynapse &b) {
                  return key(a) < key(b);
              });
    ASSERT_EQ(mask.size(), expect.size());
    for (size_t i = 0; i < mask.size(); ++i)
        EXPECT_EQ(mask[i], expect[i]) << "entry " << i;
}

TEST(Mitigator, ClampProfilesCleanRangeAndStaysBlind)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(23);
    MitigationOutcome clean =
        makeMitigator(Strategy::ClampActivations)
            ->run(setup, injectNothing, rng);
    // Blind strategy: no diagnosis, every physical activation unit
    // carries a comparator pair.
    EXPECT_DOUBLE_EQ(clean.coverage, 1.0);
    EXPECT_EQ(clean.diagnosed, 0);
    EXPECT_EQ(clean.mitigatedUnits, f.array.hidden + f.array.outputs);
    EXPECT_GT(clean.accuracy, 0.6)
        << "clamping the clean range must not break a clean array";

    Rng rng2(23);
    MitigationOutcome faulty =
        makeMitigator(Strategy::ClampActivations)
            ->run(setup, heavyInjector(4, 81), rng2);
    EXPECT_GE(faulty.accuracy, 0.0);
    EXPECT_LE(faulty.accuracy, 1.0);
}

TEST(Mitigator, ReplicateRecruitsSparesForDiagnosedOutputs)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(29);
    // Deterministically destroy logical output row 1's activation.
    auto inject = [](HardwareBackend &accel) {
        Rng ir(83);
        accel.injectDefects({UnitKind::Activation, Layer::Output, 1, 0},
                            15, ir);
    };
    MitigationOutcome out =
        makeMitigator(Strategy::ReplicateCritical)
            ->run(setup, inject, rng);
    EXPECT_GT(out.diagnosed, 0);
    EXPECT_GE(out.mitigatedUnits, 1)
        << "a diagnosed output row should recruit spare copies";
    EXPECT_LE(out.mitigatedUnits, 2) << "one faulty row, two spares max";
    EXPECT_GE(out.accuracy, 0.0);
    EXPECT_LE(out.accuracy, 1.0);
}

} // namespace
} // namespace dtann
