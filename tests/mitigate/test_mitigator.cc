/**
 * @file
 * Mitigation strategies: remap planning, bypass bookkeeping, and
 * the Mitigator interface contracts.
 */

#include <gtest/gtest.h>

#include "ann/trainer.hh"
#include "core/campaign.hh"
#include "data/synth_uci.hh"
#include "mitigate/mitigator.hh"
#include "mitigate/remap.hh"

namespace dtann {
namespace {

/** Shared tiny task: iris on a 16x8x6 array (3 spare output rows). */
struct Fixture
{
    AcceleratorConfig array;
    MlpTopology logical;
    Dataset ds;
    Hyper hyper{6, 40, 0.2, 0.1};
    MlpWeights baseline;

    Fixture() : logical{4, 6, 3}, baseline(logical)
    {
        array.inputs = 16;
        array.hidden = 8;
        array.outputs = 6;
        Rng rng(101);
        ds = makeSyntheticTask(uciTask("iris"), rng, 90);
        Accelerator accel(array, logical);
        Rng trng(102);
        baseline = Trainer(hyper).train(accel, ds, trng);
    }

    MitigationSetup setup()
    {
        BistConfig bist;
        bist.vectorsPerUnit = 16;
        return MitigationSetup{array, logical, ds,
                               retrainHyper(hyper, 0.3),
                               baseline,  2,      bist};
    }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

void
injectNothing(Accelerator &)
{
}

/** Heavy defects: every drawn unit gets 14 extra transistor faults. */
std::function<void(Accelerator &)>
heavyInjector(int count, uint64_t seed,
              SitePool pool = SitePool::all())
{
    return [count, seed, pool](Accelerator &accel) {
        Rng rng(seed);
        DefectInjector inj(accel, pool);
        inj.inject(count, rng);
        for (const UnitSite &s : accel.faultySites())
            accel.injectDefects(s, 14, rng);
    };
}

TEST(Strategy, NamesAreStable)
{
    EXPECT_STREQ(strategyName(Strategy::NoOp), "noop");
    EXPECT_STREQ(strategyName(Strategy::RetrainOnly), "retrain");
    EXPECT_STREQ(strategyName(Strategy::BypassFaulty), "bypass");
    EXPECT_STREQ(strategyName(Strategy::RemapToSpares), "remap");
}

TEST(Strategy, FactoryRoundTrips)
{
    for (Strategy s :
         {Strategy::NoOp, Strategy::RetrainOnly, Strategy::BypassFaulty,
          Strategy::RemapToSpares}) {
        auto m = makeMitigator(s);
        ASSERT_NE(m, nullptr);
        EXPECT_EQ(m->kind(), s);
        EXPECT_EQ(m->name(), strategyName(s));
    }
}

TEST(PlanOutputRemap, CleanMapIsIdentity)
{
    Fixture &f = fixture();
    std::vector<int> plan =
        planOutputRemap(DefectMap(), f.logical, f.array);
    EXPECT_EQ(plan, (std::vector<int>{0, 1, 2}));
}

TEST(PlanOutputRemap, FaultyRowMovesToLowestCleanSpare)
{
    Fixture &f = fixture();
    DefectMap map;
    map.markSuspect({UnitKind::AdderStage, Layer::Output, 1, 0});
    EXPECT_EQ(planOutputRemap(map, f.logical, f.array),
              (std::vector<int>{0, 3, 2}));

    // A faulty spare is skipped in favour of the next clean one.
    map.markSuspect({UnitKind::Activation, Layer::Output, 3, 0});
    EXPECT_EQ(planOutputRemap(map, f.logical, f.array),
              (std::vector<int>{0, 4, 2}));

    // Hidden-layer suspects do not trigger output remapping.
    DefectMap hidden_only;
    hidden_only.markSuspect({UnitKind::Multiplier, Layer::Hidden, 1, 2});
    EXPECT_EQ(planOutputRemap(hidden_only, f.logical, f.array),
              (std::vector<int>{0, 1, 2}));
}

TEST(PlanOutputRemap, DegradesGracefullyWhenSparesExhausted)
{
    Fixture &f = fixture();
    DefectMap map; // every physical output row faulty
    for (int n = 0; n < f.array.outputs; ++n)
        map.markSuspect({UnitKind::Activation, Layer::Output, n, 0});
    // No clean spare exists: faulty rows keep their position.
    EXPECT_EQ(planOutputRemap(map, f.logical, f.array),
              (std::vector<int>{0, 1, 2}));
}

TEST(RemappedOutputMlp, CleanForwardIsInvariantToRowChoice)
{
    Fixture &f = fixture();
    MlpTopology ext =
        RemappedOutputMlp::extendedTopology(f.logical, f.array);
    EXPECT_EQ(ext.outputs, f.array.outputs);

    Accelerator accel(f.array, ext);
    RemappedOutputMlp identity(accel, f.logical, {0, 1, 2});
    RemappedOutputMlp steered(accel, f.logical, {3, 1, 5});
    EXPECT_EQ(identity.remappedCount(), 0);
    EXPECT_EQ(steered.remappedCount(), 2);

    Rng rng(7);
    std::vector<double> in(4);
    for (int trial = 0; trial < 10; ++trial) {
        for (double &v : in)
            v = rng.nextDouble();
        identity.setWeights(f.baseline);
        Activations a = identity.forward(in);
        steered.setWeights(f.baseline);
        Activations b = steered.forward(in);
        // On a defect-free array a spare row computes exactly what
        // the original row would have.
        EXPECT_EQ(a.output(), b.output());
    }
}

TEST(Mitigator, NoOpOnCleanArrayMatchesBaseline)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(11);
    MitigationOutcome out =
        makeMitigator(Strategy::NoOp)->run(setup, injectNothing, rng);

    Accelerator accel(f.array, f.logical);
    accel.setWeights(f.baseline);
    EXPECT_DOUBLE_EQ(out.accuracy, evalAccuracy(accel, f.ds));
    EXPECT_DOUBLE_EQ(out.coverage, 1.0);
    EXPECT_EQ(out.diagnosed, 0);
    EXPECT_EQ(out.mitigatedUnits, 0);
    EXPECT_GT(out.accuracy, 0.6) << "baseline should learn iris";
}

TEST(Mitigator, RetrainOnlyHandlesCleanAndFaultyArrays)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(13);
    MitigationOutcome clean = makeMitigator(Strategy::RetrainOnly)
                                  ->run(setup, injectNothing, rng);
    EXPECT_GT(clean.accuracy, 0.6);

    Rng rng2(13);
    MitigationOutcome faulty =
        makeMitigator(Strategy::RetrainOnly)
            ->run(setup, heavyInjector(3, 77), rng2);
    EXPECT_GE(faulty.accuracy, 0.0);
    EXPECT_LE(faulty.accuracy, 1.0);
}

TEST(Mitigator, BypassReportsDiagnosisAndBypassCounts)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(17);
    MitigationOutcome out =
        makeMitigator(Strategy::BypassFaulty)
            ->run(setup, heavyInjector(4, 78), rng);
    EXPECT_GT(out.diagnosed, 0)
        << "heavy defects must show up in the map";
    EXPECT_GE(out.coverage, 0.0);
    EXPECT_LE(out.coverage, 1.0);
    // Output-layer activations are never bypassed, so the bypass
    // count can undershoot the diagnosis count but never exceed it.
    EXPECT_LE(out.mitigatedUnits, out.diagnosed);
    EXPECT_GE(out.accuracy, 0.0);
    EXPECT_LE(out.accuracy, 1.0);
}

TEST(Mitigator, RemapSteersDiagnosedOutputRows)
{
    Fixture &f = fixture();
    MitigationSetup setup = f.setup();
    Rng rng(19);
    // Deterministically destroy logical output row 1's activation.
    auto inject = [](Accelerator &accel) {
        Rng ir(79);
        accel.injectDefects({UnitKind::Activation, Layer::Output, 1, 0},
                            15, ir);
    };
    MitigationOutcome out =
        makeMitigator(Strategy::RemapToSpares)->run(setup, inject, rng);
    EXPECT_GT(out.diagnosed, 0);
    EXPECT_GE(out.mitigatedUnits, 1)
        << "a diagnosed output row should be remapped to a spare";
    EXPECT_GE(out.accuracy, 0.0);
    EXPECT_LE(out.accuracy, 1.0);
}

} // namespace
} // namespace dtann
