/**
 * @file
 * Backend selection through the campaign-as-a-service layer: the
 * `backend` spec field routes a whole mitigation campaign onto the
 * systolic grid, unknown names and unsupported strategies are spec
 * errors, and the two backends' specs differ only in that field —
 * the contract that gives both campaigns identical defect
 * substreams.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/json.hh"
#include "service/runner.hh"
#include "service/spec.hh"

namespace dtann {
namespace {

/** A seconds-scale systolic mitigation spec. */
std::string
tinySystolicJson(const std::string &backend)
{
    return std::string("{\"kind\":\"mitigation\",\"name\":\"tiny\",") +
        "\"tasks\":[\"iris\"],\"defect_counts\":[0,4]," +
        "\"repetitions\":2,\"folds\":2,\"rows\":60," +
        "\"epoch_scale\":0.1,\"retrain_scale\":0.2," +
        "\"bist_vectors_per_unit\":4,\"seed\":13,\"threads\":2," +
        "\"backend\":\"" + backend + "\"}";
}

TEST(BackendCampaign, UnknownBackendNameIsASpecError)
{
    try {
        ScenarioSpec::parse(tinySystolicJson("neuromorphic"));
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_STREQ(e.what(),
                     "unknown backend 'neuromorphic' (expected one "
                     "of: spatial, systolic)");
    }
}

TEST(BackendCampaign, ExplicitSpareRowStrategyIsASpecErrorOnSystolic)
{
    std::string json = tinySystolicJson("systolic");
    json.insert(json.size() - 1,
                ",\"strategies\":[\"retrain\",\"remap\"]");
    try {
        ScenarioSpec::parse(json);
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_STREQ(e.what(),
                     "strategy 'remap' is not supported on backend "
                     "'systolic'");
    }
}

TEST(BackendCampaign, DefaultLineupDropsSpareRowStrategiesOnSystolic)
{
    ScenarioSpec spec = ScenarioSpec::parse(tinySystolicJson("systolic"));
    std::string echo = spec.journalEcho();
    EXPECT_NE(echo.find("\"bypass\""), std::string::npos) << echo;
    EXPECT_NE(echo.find("\"clamp\""), std::string::npos) << echo;
    EXPECT_EQ(echo.find("\"remap\""), std::string::npos) << echo;
    EXPECT_EQ(echo.find("\"replicate\""), std::string::npos) << echo;
    EXPECT_EQ(spec.backendLabel(), "systolic");
}

TEST(BackendCampaign, BackendIsTheOnlySpecDelta)
{
    // Same spec, two backends: the journal echoes (and therefore
    // the campaign cell grids and their defect substreams) must
    // differ only in the backend name — the property that makes a
    // cross-backend comparison apples to apples. The default
    // strategy lineups do differ (spare-row strategies exist only
    // on the spatial array), so pin a shared lineup.
    std::string spatial_json = tinySystolicJson("spatial");
    std::string systolic_json = tinySystolicJson("systolic");
    const std::string lineup =
        ",\"strategies\":[\"noop\",\"retrain\",\"bypass\",\"clamp\"]";
    spatial_json.insert(spatial_json.size() - 1, lineup);
    systolic_json.insert(systolic_json.size() - 1, lineup);
    std::string spatial_echo =
        ScenarioSpec::parse(spatial_json).journalEcho();
    std::string systolic_echo =
        ScenarioSpec::parse(systolic_json).journalEcho();
    size_t pos = systolic_echo.find("\"backend\":\"systolic\"");
    ASSERT_NE(pos, std::string::npos) << systolic_echo;
    systolic_echo.replace(pos, strlen("\"backend\":\"systolic\""),
                          "\"backend\":\"spatial\"");
    EXPECT_EQ(spatial_echo, systolic_echo);
}

TEST(BackendCampaign, SystolicMitigationCampaignRunsEndToEnd)
{
    // The acceptance scenario in miniature: a Fig10-style mitigation
    // campaign on the systolic grid runs to completion and its
    // envelope names the backend it ran on.
    ScenarioSpec spec = ScenarioSpec::parse(tinySystolicJson("systolic"));
    ScenarioResult result = runScenario(spec);
    EXPECT_NE(result.json.find("\"backend\":\"systolic\""),
              std::string::npos);
    EXPECT_NE(result.json.find("\"results\":["), std::string::npos);
    // Every default-lineup strategy the grid supports reported a
    // curve; the spare-row strategies are absent.
    EXPECT_NE(result.json.find("\"bypass\""), std::string::npos);
    EXPECT_EQ(result.json.find("\"remap\""), std::string::npos);
}

} // namespace
} // namespace dtann
