/**
 * @file
 * CampaignServer tests: the request->response routing seam
 * (handle()) for every endpoint and error path, and one real
 * socket round trip through serve()/CampaignClient — submit, poll,
 * fetch, metrics, shutdown — over an ephemeral loopback port.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <unistd.h>

#include "common/json.hh"
#include "service/client.hh"
#include "service/runner.hh"
#include "service/server/http_server.hh"

namespace dtann {
namespace {

namespace fs = std::filesystem;

struct StateDir
{
    explicit StateDir(const std::string &stem)
        : path(testing::TempDir() + "dtann_" + stem + "_" +
               std::to_string(::getpid()))
    {
        fs::remove_all(path);
    }
    ~StateDir() { fs::remove_all(path); }
    std::string path;
};

ScenarioSpec
tinyFig5(const std::string &name, int reps = 4)
{
    ScenarioSpec spec;
    spec.kind = "fig5";
    spec.name = name;
    spec.fig5.repetitions = reps;
    spec.fig5.seed = 7;
    spec.fig5.defectCounts = {2};
    return spec;
}

/** Parse a serialized response from handle(). */
HttpMessage
parseResponse(const std::string &wire)
{
    HttpParser p(HttpParser::Mode::Response);
    p.feed(wire);
    p.finish();
    EXPECT_EQ(p.state(), HttpParser::State::Done) << wire;
    return p.message();
}

HttpMessage
makeRequest(const std::string &method, const std::string &target,
            const std::string &body = "")
{
    HttpMessage req;
    req.method = method;
    req.target = target;
    req.body = body;
    return req;
}

struct ServerFixture
{
    explicit ServerFixture(const std::string &stem)
        : dir(stem), queue({dir.path, /*threads=*/2, /*runners=*/1}),
          server(queue, "127.0.0.1:0")
    {
    }
    StateDir dir;
    JobQueue queue;
    CampaignServer server;
};

TEST(CampaignServer, RoutesJobLifecycle)
{
    ServerFixture fx("srv_routes");
    ScenarioSpec spec = tinyFig5("t");

    HttpMessage posted = parseResponse(fx.server.handle(
        makeRequest("POST", "/jobs", spec.toJson())));
    ASSERT_EQ(posted.status, 201);
    uint64_t id = static_cast<uint64_t>(
        jsonParse(posted.body).at("id").asInt());

    // Status is served while the job is anywhere in its lifecycle.
    HttpMessage status = parseResponse(fx.server.handle(
        makeRequest("GET", "/jobs/" + std::to_string(id))));
    EXPECT_EQ(status.status, 200);
    EXPECT_NE(jsonParse(status.body).at("state").asString(), "");

    // Poll the result endpoint to completion: 202 while pending,
    // then 200 with the envelope.
    HttpMessage result;
    for (int i = 0; i < 600; ++i) {
        result = parseResponse(fx.server.handle(makeRequest(
            "GET", "/jobs/" + std::to_string(id) + "/result")));
        if (result.status != 202)
            break;
        ::usleep(100 * 1000);
    }
    ASSERT_EQ(result.status, 200);
    EXPECT_EQ(result.body, runScenario(spec).json + "\n");
}

TEST(CampaignServer, BadSpecIs400WithParserMessage)
{
    ServerFixture fx("srv_badspec");
    HttpMessage r = parseResponse(
        fx.server.handle(makeRequest("POST", "/jobs", "{oops")));
    EXPECT_EQ(r.status, 400);
    // The daemon relays the JSON parser's own diagnostic.
    EXPECT_NE(jsonParse(r.body).at("error").asString(), "");
}

TEST(CampaignServer, ErrorRoutes)
{
    ServerFixture fx("srv_errors");
    EXPECT_EQ(parseResponse(fx.server.handle(
                                makeRequest("GET", "/jobs/42")))
                  .status,
              404);
    EXPECT_EQ(parseResponse(fx.server.handle(makeRequest(
                                "GET", "/jobs/42/result")))
                  .status,
              404);
    EXPECT_EQ(parseResponse(fx.server.handle(
                                makeRequest("DELETE", "/jobs/42")))
                  .status,
              404);
    EXPECT_EQ(parseResponse(fx.server.handle(
                                makeRequest("GET", "/nope")))
                  .status,
              404);
    EXPECT_EQ(parseResponse(fx.server.handle(
                                makeRequest("PUT", "/jobs/42")))
                  .status,
              405);
    EXPECT_EQ(parseResponse(fx.server.handle(
                                makeRequest("DELETE", "/metrics")))
                  .status,
              405);
    EXPECT_EQ(parseResponse(fx.server.handle(makeRequest(
                                "GET", "/jobs/notanumber")))
                  .status,
              404);
}

TEST(CampaignServer, CancelledJobResultIs410)
{
    ServerFixture fx("srv_cancel");
    HttpMessage posted =
        parseResponse(fx.server.handle(makeRequest(
            "POST", "/jobs", tinyFig5("long", 500).toJson())));
    ASSERT_EQ(posted.status, 201);
    std::string id = std::to_string(
        jsonParse(posted.body).at("id").asInt());

    EXPECT_EQ(parseResponse(fx.server.handle(
                                makeRequest("DELETE", "/jobs/" + id)))
                  .status,
              200);
    HttpMessage result;
    for (int i = 0; i < 600; ++i) {
        result = parseResponse(fx.server.handle(
            makeRequest("GET", "/jobs/" + id + "/result")));
        if (result.status != 202)
            break;
        ::usleep(100 * 1000);
    }
    EXPECT_EQ(result.status, 410);
}

TEST(CampaignServer, MetricsIncludeHttpLatencies)
{
    ServerFixture fx("srv_metrics");
    fx.server.handle(makeRequest("GET", "/jobs/1")); // warm a label
    HttpMessage r = parseResponse(
        fx.server.handle(makeRequest("GET", "/metrics")));
    ASSERT_EQ(r.status, 200);
    JsonValue v = jsonParse(r.body);
    EXPECT_EQ(v.at("http").at("GET /jobs/<id>").at("count").asInt(),
              1);
    EXPECT_EQ(v.at("jobs").at("queued").asInt(), 0);
}

TEST(CampaignServer, MetricsJsonCountsJobsPerBackend)
{
    ServerFixture fx("srv_backends");
    HttpMessage r = parseResponse(
        fx.server.handle(makeRequest("GET", "/metrics")));
    ASSERT_EQ(r.status, 200);
    JsonValue v = jsonParse(r.body);
    // Known backends always report, 0 when idle; fig5 jobs (no
    // backend) land under "none" once submitted.
    EXPECT_EQ(v.at("backends").at("spatial").asInt(), 0);
    EXPECT_EQ(v.at("backends").at("systolic").asInt(), 0);

    ASSERT_EQ(parseResponse(fx.server.handle(makeRequest(
                                "POST", "/jobs",
                                tinyFig5("none", 2).toJson())))
                  .status,
              201);
    r = parseResponse(
        fx.server.handle(makeRequest("GET", "/metrics")));
    EXPECT_EQ(jsonParse(r.body).at("backends").at("none").asInt(), 1);
}

TEST(CampaignServer, MetricsPrometheusExposition)
{
    ServerFixture fx("srv_prom");
    fx.server.handle(makeRequest("GET", "/jobs/1")); // warm a label
    HttpMessage r = parseResponse(fx.server.handle(
        makeRequest("GET", "/metrics?format=prometheus")));
    ASSERT_EQ(r.status, 200);
    EXPECT_EQ(r.header("content-type"), "text/plain; version=0.0.4");
    for (const char *needle :
         {"# TYPE dtann_jobs gauge", "dtann_jobs{state=\"queued\"} 0",
          "dtann_jobs_backend{backend=\"spatial\"} 0",
          "dtann_jobs_backend{backend=\"systolic\"} 0",
          "dtann_queue_depth 0", "dtann_sim_lane_occupancy",
          "dtann_http_requests_total{endpoint=\"GET /jobs/<id>\"} 1"})
        EXPECT_NE(r.body.find(needle), std::string::npos) << needle;

    // The JSON document stays the default, and an explicit
    // format=json still serves it.
    HttpMessage json = parseResponse(fx.server.handle(
        makeRequest("GET", "/metrics?format=json")));
    ASSERT_EQ(json.status, 200);
    EXPECT_NO_THROW(jsonParse(json.body));

    // Unknown formats are a client error, named in the message.
    HttpMessage bad = parseResponse(fx.server.handle(
        makeRequest("GET", "/metrics?format=xml")));
    EXPECT_EQ(bad.status, 400);
    EXPECT_NE(bad.body.find("format=xml"), std::string::npos);
}

TEST(CampaignServer, ShutdownEndpointStopsServing)
{
    ServerFixture fx("srv_shutdown");
    EXPECT_FALSE(fx.server.shutdownRequested());
    HttpMessage r = parseResponse(fx.server.handle(
        makeRequest("POST", "/shutdown?mode=now")));
    EXPECT_EQ(r.status, 200);
    EXPECT_NE(r.body.find("\"mode\":\"now\""), std::string::npos);
    EXPECT_TRUE(fx.server.shutdownRequested());
}

TEST(CampaignServer, SocketRoundTripWithClient)
{
    ServerFixture fx("srv_socket");
    ASSERT_GT(fx.server.port(), 0);
    std::thread serving([&] { fx.server.serve(); });

    ScenarioSpec spec = tinyFig5("t");
    CampaignClient client(fx.server.address());
    uint64_t id = client.submit(spec.toJson());
    EXPECT_EQ(jsonParse(client.status(id)).at("id").asInt(),
              (int64_t)id);

    std::string result;
    for (int i = 0; i < 600; ++i) {
        try {
            result = client.result(id);
            break;
        } catch (const ClientError &e) {
            ASSERT_EQ(e.status, 202) << e.what();
            ::usleep(100 * 1000);
        }
    }
    EXPECT_EQ(result, runScenario(spec).json + "\n");

    EXPECT_THROW(client.result(id + 7), ClientError);
    JsonValue metrics = jsonParse(client.metrics());
    EXPECT_GE(metrics.at("http").at("POST /jobs").at("count").asInt(),
              1);

    client.shutdown();
    serving.join();
    EXPECT_TRUE(fx.server.shutdownRequested());
}

} // namespace
} // namespace dtann
