#!/usr/bin/env bash
# End-to-end dtannd smoke test.
#
#   daemon_smoke.sh <dtannd> <dtann_campaign> <smoke_spec> <workdir>
#
# Phase 1: launch the daemon on an ephemeral port, submit the smoke
# spec, poll it to completion, and check the fetched result is
# byte-identical to an offline dtann_campaign run of the same spec.
#
# Phase 2 (the tentpole contract): submit a bigger campaign, kill
# the daemon with SIGKILL once the job has journaled some cells,
# restart it on the same state dir, and verify the resumed job's
# result is byte-identical to an offline run — nothing a SIGKILL
# can hit may change campaign output.
set -u

DTANND=$1
CLI=$2
SMOKE_SPEC=$3
WORK=$4

fail() { echo "FAIL: $*" >&2; exit 1; }

# The offline reference runs must see the same spec the daemon
# runs: no env overrides on either side.
unset DTANN_SEED DTANN_THREADS DTANN_JSON_OUT DTANN_SERVER

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || fail "cannot enter $WORK"

DAEMON_PID=
cleanup() { [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null; }
trap cleanup EXIT

start_daemon() {
    rm -f port.txt
    "$DTANND" --state-dir state --listen 127.0.0.1:0 \
        --port-file port.txt >daemon.log 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        [ -s port.txt ] && break
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on start"
        sleep 0.1
    done
    [ -s port.txt ] || fail "daemon never published its port"
    ADDR=$(cat port.txt)
}

await_done() { # $1 = job id, $2 = max seconds
    for _ in $(seq 1 $(($2 * 2))); do
        STATUS=$("$CLI" status --server "$ADDR" "$1") \
            || fail "status query failed"
        case $STATUS in
        *'"state":"done"'*) return 0 ;;
        *'"state":"failed"'* | *'"state":"cancelled"'*)
            fail "job $1 ended badly: $STATUS" ;;
        esac
        sleep 0.5
    done
    fail "job $1 did not finish: $STATUS"
}

# ---- Phase 1: submit -> done -> result == offline run ------------

start_daemon

"$CLI" --validate "$SMOKE_SPEC" >/dev/null || fail "--validate failed"

ID=$("$CLI" submit --server "$ADDR" "$SMOKE_SPEC") \
    || fail "submit failed"
await_done "$ID" 120
"$CLI" result --server "$ADDR" "$ID" --out daemon_smoke.json \
    || fail "result fetch failed"

"$CLI" "$SMOKE_SPEC" --out offline_smoke.json >/dev/null 2>&1 \
    || fail "offline smoke run failed"
cmp -s daemon_smoke.json offline_smoke.json \
    || fail "daemon result differs from offline run"

# ---- Phase 2: kill -9 mid-job, restart, resume bit-identically ---

# Enough cells (12000, ~0.3 ms each) that the campaign runs for a
# few seconds and the SIGKILL lands mid-job.
cat >big_spec.json <<'EOF'
{"kind":"fig5","name":"killme","repetitions":3000,"seed":13,
 "operators":["adder4","multiplier4"],"defect_counts":[1,2]}
EOF

BIG=$("$CLI" submit --server "$ADDR" big_spec.json) \
    || fail "big submit failed"

# Wait until the job has journaled at least one cell, then SIGKILL.
PROGRESSED=
for _ in $(seq 1 240); do
    STATUS=$("$CLI" status --server "$ADDR" "$BIG") || STATUS=""
    case $STATUS in
    *'"state":"done"'*)
        # Too fast to interrupt: still a valid (if weaker) pass for
        # the restart path below.
        PROGRESSED=done
        break ;;
    *'"cells_done":0'* | "") sleep 0.1 ;;
    *) PROGRESSED=mid; break ;;
    esac
done
[ -n "$PROGRESSED" ] || fail "big job never made progress: $STATUS"

kill -9 "$DAEMON_PID" || fail "could not kill daemon"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=

start_daemon
await_done "$BIG" 240
"$CLI" result --server "$ADDR" "$BIG" --out daemon_big.json \
    || fail "big result fetch failed"

"$CLI" big_spec.json --out offline_big.json >/dev/null 2>&1 \
    || fail "offline big run failed"
cmp -s daemon_big.json offline_big.json \
    || fail "resumed result differs from offline run (kill -9 broke bit-identity)"

# The restarted daemon must have resumed, not recomputed from zero:
# its journal already held cells at the kill.
[ -s state/job-"$BIG".jnl ] || fail "big job has no journal"

"$CLI" shutdown --server "$ADDR" || fail "shutdown failed"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=

echo "PASS (phase2: $PROGRESSED)"
exit 0
