#!/usr/bin/env bash
# End-to-end sharded-campaign smoke test.
#
#   daemon_shard_smoke.sh <dtannd> <dtann_campaign> <workdir>
#
# Launch dtannd with --workers 2 so jobs fan out across forked
# dtann_campaign shard workers, submit a campaign big enough to run
# for a few seconds, SIGKILL one worker mid-job (the daemon must
# respawn it and the shard journal must make the restart cheap), and
# verify the finished job:
#   - is byte-identical to an offline single-process run,
#   - advertised per-worker shard progress and the negotiated lane
#     width on /metrics while running,
#   - cleaned up its shard journals on success.
set -u

DTANND=$1
CLI=$2
WORK=$3

fail() { echo "FAIL: $*" >&2; exit 1; }

# Both the daemon and the offline reference must run the same spec
# with no environment overrides.
unset DTANN_SEED DTANN_THREADS DTANN_JSON_OUT DTANN_SERVER DTANN_LANES

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK" || fail "cannot enter $WORK"

DAEMON_PID=
cleanup() {
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null
    # Orphaned shard workers hold flocks on journals in our workdir.
    pkill -9 -f "jnl\.shard-" 2>/dev/null
    return 0
}
trap cleanup EXIT

"$DTANND" --state-dir state --listen 127.0.0.1:0 --port-file port.txt \
    --workers 2 --worker-bin "$CLI" >daemon.log 2>&1 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    [ -s port.txt ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died on start"
    sleep 0.1
done
[ -s port.txt ] || fail "daemon never published its port"
ADDR=$(cat port.txt)

# The idle daemon already advertises its shard pool and the
# negotiated lane plane.
METRICS=$("$CLI" metrics --server "$ADDR") || fail "metrics failed"
case $METRICS in
*'"shard_workers":2'*) ;;
*) fail "metrics missing shard_workers: $METRICS" ;;
esac
case $METRICS in
*'"lanes":{"width":'*) ;;
*) fail "metrics missing lane negotiation: $METRICS" ;;
esac

# 12000 cells (~seconds of work) so the worker SIGKILL lands mid-job.
cat >shard_spec.json <<'EOF'
{"kind":"fig5","name":"sharded","repetitions":3000,"seed":13,
 "operators":["adder4","multiplier4"],"defect_counts":[1,2]}
EOF

ID=$("$CLI" submit --server "$ADDR" shard_spec.json) \
    || fail "submit failed"

# Wait for the workers to appear, kill one, and watch /metrics for
# per-shard progress while the job runs.
KILLED=
SHARDS_SEEN=
DONE_EARLY=
for _ in $(seq 1 240); do
    STATUS=$("$CLI" status --server "$ADDR" "$ID") || STATUS=""
    case $STATUS in
    *'"state":"done"'*) DONE_EARLY=yes; break ;;
    *'"state":"failed"'* | *'"state":"cancelled"'*)
        fail "job $ID ended badly: $STATUS" ;;
    esac
    if [ -z "$SHARDS_SEEN" ]; then
        M=$("$CLI" metrics --server "$ADDR") || M=""
        case $M in *'"shards":['*'"cells_done"'*) SHARDS_SEEN=yes ;; esac
    fi
    if [ -z "$KILLED" ]; then
        WPID=$(pgrep -f "jnl\.shard-0" | head -n 1)
        if [ -n "$WPID" ]; then
            kill -9 "$WPID" 2>/dev/null && KILLED=yes
        fi
    fi
    [ -n "$KILLED" ] && [ -n "$SHARDS_SEEN" ] && break
    sleep 0.1
done
[ -n "$KILLED$DONE_EARLY" ] || fail "no shard worker ever appeared"

for _ in $(seq 1 480); do
    STATUS=$("$CLI" status --server "$ADDR" "$ID") \
        || fail "status query failed"
    case $STATUS in
    *'"state":"done"'*) break ;;
    *'"state":"failed"'* | *'"state":"cancelled"'*)
        fail "job $ID ended badly: $STATUS" ;;
    esac
    sleep 0.5
done
case $STATUS in
*'"state":"done"'*) ;;
*) fail "job $ID did not finish: $STATUS" ;;
esac

"$CLI" result --server "$ADDR" "$ID" --out sharded.json \
    || fail "result fetch failed"

# The acceptance contract: the merged sharded run is byte-identical
# to a single-process run of the same spec.
"$CLI" shard_spec.json --out offline.json >/dev/null 2>&1 \
    || fail "offline run failed"
cmp -s sharded.json offline.json \
    || fail "sharded result differs from single-process run"

# Shard journals are scratch: gone once the job merged and exported.
LEFTOVER=$(ls state/*.jnl.shard-* 2>/dev/null) && [ -n "$LEFTOVER" ] \
    && fail "shard journals not cleaned up: $LEFTOVER"

"$CLI" shutdown --server "$ADDR" || fail "shutdown failed"
wait "$DAEMON_PID" 2>/dev/null
DAEMON_PID=

DETAIL="killed=${KILLED:-no} shards_metric=${SHARDS_SEEN:-no}"
[ -n "$DONE_EARLY" ] && DETAIL="$DETAIL (job finished before kill)"
echo "PASS ($DETAIL)"
exit 0
