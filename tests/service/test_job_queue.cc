/**
 * @file
 * JobQueue tests: admission (bad specs rejected with the parser's
 * message before any state exists), the job lifecycle
 * (queued -> running -> done/failed/cancelled), restart recovery
 * from the state directory, and cross-job sharing through the
 * ServerCache — including the contract that daemon-produced results
 * are byte-identical to a direct runScenario() of the same spec.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "common/json.hh"
#include "service/runner.hh"
#include "service/server/job_queue.hh"

namespace dtann {
namespace {

namespace fs = std::filesystem;

/** Fresh state directory per test, removed on destruction. */
struct StateDir
{
    explicit StateDir(const std::string &stem)
        : path(testing::TempDir() + "dtann_" + stem + "_" +
               std::to_string(::getpid()))
    {
        fs::remove_all(path);
    }
    ~StateDir() { fs::remove_all(path); }
    std::string path;
};

/** A sub-second fig5 spec with @p reps cells. */
ScenarioSpec
tinyFig5(const std::string &name, int reps = 4)
{
    ScenarioSpec spec;
    spec.kind = "fig5";
    spec.name = name;
    spec.fig5.repetitions = reps;
    spec.fig5.seed = 7;
    spec.fig5.defectCounts = {2};
    return spec;
}

/** A seconds-scale fig10 spec (training work worth caching). */
ScenarioSpec
tinyFig10(const std::string &name)
{
    ScenarioSpec spec;
    spec.kind = "fig10";
    spec.name = name;
    spec.fig10.tasks = {"iris"};
    spec.fig10.defectCounts = {0, 3};
    spec.fig10.repetitions = 2;
    spec.fig10.folds = 2;
    spec.fig10.rows = 90;
    spec.fig10.epochScale = 0.1;
    spec.fig10.retrainScale = 0.2;
    spec.fig10.seed = 11;
    return spec;
}

/** Poll @p queue until @p id reaches a terminal state. */
std::string
awaitTerminal(JobQueue &queue, uint64_t id)
{
    for (int i = 0; i < 600; ++i) {
        std::string status = queue.statusJson(id);
        if (status.find("\"state\":\"queued\"") == std::string::npos &&
            status.find("\"state\":\"running\"") == std::string::npos)
            return status;
        ::usleep(100 * 1000);
    }
    return queue.statusJson(id);
}

TEST(JobQueue, SubmitRunsToDoneBitIdenticalToDirectRun)
{
    StateDir dir("jq_done");
    ScenarioSpec spec = tinyFig5("t");
    JobQueue queue({dir.path, /*threads=*/2, /*runners=*/1});
    uint64_t id = queue.submit(spec.toJson());

    std::string status = awaitTerminal(queue, id);
    EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos)
        << status;
    EXPECT_NE(status.find("\"cells_done\":4"), std::string::npos);
    EXPECT_NE(status.find("\"cells_total\":4"), std::string::npos);

    std::string out;
    ASSERT_EQ(queue.result(id, out), JobQueue::ResultState::Ready);
    EXPECT_EQ(out, runScenario(spec).json + "\n");
}

TEST(JobQueue, RejectsBadSpecsBeforeQueueing)
{
    StateDir dir("jq_bad");
    JobQueue queue({dir.path, 1, 1});
    EXPECT_THROW(queue.submit("not json"), JsonError);
    EXPECT_THROW(queue.submit("{\"kind\":\"nope\"}"), JsonError);
    // planSpec validates task names without uciTask()'s fatal().
    EXPECT_THROW(
        queue.submit("{\"kind\":\"fig10\",\"tasks\":[\"bogus\"]}"),
        JsonError);
    // Nothing was admitted: no job files, no visible jobs.
    EXPECT_EQ(queue.statusJson(1), "");
    std::string out;
    EXPECT_EQ(queue.result(1, out), JobQueue::ResultState::Unknown);
    size_t files = 0;
    for (const auto &e : fs::directory_iterator(dir.path)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 0u);
}

TEST(JobQueue, CancelQueuedAndRunning)
{
    StateDir dir("jq_cancel");
    // One runner so the second submission has to wait its turn.
    JobQueue queue({dir.path, 1, 1});
    uint64_t running =
        queue.submit(tinyFig5("long", /*reps=*/500).toJson());
    uint64_t waiting = queue.submit(tinyFig5("waiting").toJson());

    EXPECT_TRUE(queue.cancel(waiting));
    EXPECT_TRUE(queue.cancel(running));
    EXPECT_FALSE(queue.cancel(999));

    EXPECT_NE(awaitTerminal(queue, running)
                  .find("\"state\":\"cancelled\""),
              std::string::npos);
    EXPECT_NE(awaitTerminal(queue, waiting)
                  .find("\"state\":\"cancelled\""),
              std::string::npos);
    std::string out;
    EXPECT_EQ(queue.result(running, out),
              JobQueue::ResultState::Cancelled);
}

TEST(JobQueue, RestartServesFinishedJobsAndContinuesIds)
{
    StateDir dir("jq_restart");
    ScenarioSpec spec = tinyFig5("t");
    std::string first_result;
    {
        JobQueue queue({dir.path, 2, 1});
        uint64_t id = queue.submit(spec.toJson());
        awaitTerminal(queue, id);
        ASSERT_EQ(queue.result(id, first_result),
                  JobQueue::ResultState::Ready);
    }

    // A new queue over the same state dir serves the finished job
    // and numbers new jobs after it.
    JobQueue queue({dir.path, 2, 1});
    std::string status = queue.statusJson(1);
    EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos)
        << status;
    std::string out;
    ASSERT_EQ(queue.result(1, out), JobQueue::ResultState::Ready);
    EXPECT_EQ(out, first_result);

    uint64_t next = queue.submit(spec.toJson());
    EXPECT_EQ(next, 2u);
    awaitTerminal(queue, next);
    ASSERT_EQ(queue.result(next, out), JobQueue::ResultState::Ready);
    EXPECT_EQ(out, first_result) << "same spec, same bytes";
}

TEST(JobQueue, ConcurrentIdenticalJobsShareTheCache)
{
    StateDir dir("jq_cache");
    // Two runners: both fig10 jobs run concurrently and want the
    // same task context (same seed/rows/epochs -> same cache key);
    // one builds, the other must block on the shared future.
    JobQueue queue({dir.path, 2, 2});
    ScenarioSpec a = tinyFig10("a"), b = tinyFig10("b");
    uint64_t ja = queue.submit(a.toJson());
    uint64_t jb = queue.submit(b.toJson());
    EXPECT_NE(awaitTerminal(queue, ja).find("\"state\":\"done\""),
              std::string::npos);
    EXPECT_NE(awaitTerminal(queue, jb).find("\"state\":\"done\""),
              std::string::npos);

    JsonValue metrics = jsonParse(queue.metricsJson());
    const JsonValue &task = metrics.at("cache").at("task");
    EXPECT_GE(task.at("hits").asInt(), 1);
    EXPECT_EQ(task.at("entries").asInt(), 1);

    // Sharing must not change results: both jobs, and a direct
    // uncached run, agree byte for byte (modulo the spec name echo).
    std::string ra, rb;
    ASSERT_EQ(queue.result(ja, ra), JobQueue::ResultState::Ready);
    ASSERT_EQ(queue.result(jb, rb), JobQueue::ResultState::Ready);
    EXPECT_EQ(ra, runScenario(a).json + "\n");
    EXPECT_EQ(rb, runScenario(b).json + "\n");
}

TEST(JobQueue, MetricsCountsStates)
{
    StateDir dir("jq_metrics");
    JobQueue queue({dir.path, 1, 1});
    uint64_t id = queue.submit(tinyFig5("t").toJson());
    awaitTerminal(queue, id);

    JsonValue metrics = jsonParse(queue.metricsJson());
    EXPECT_EQ(metrics.at("jobs").at("done").asInt(), 1);
    EXPECT_EQ(metrics.at("queue_depth").asInt(), 0);
    EXPECT_EQ(metrics.at("workers").asInt(), 1);
    EXPECT_EQ(metrics.at("runners").asInt(), 1);
    // The fig5 job simulated real vectors; totals must show it.
    EXPECT_GT(metrics.at("sim").at("gate_evals").asInt(), 0);
}

TEST(JobQueue, ShutdownDrainFinishesQueuedWork)
{
    StateDir dir("jq_drain");
    ScenarioSpec spec = tinyFig5("t");
    JobQueue queue({dir.path, 1, 1});
    uint64_t id = queue.submit(spec.toJson());
    queue.shutdown(/*cancelRunning=*/false);

    std::string status = queue.statusJson(id);
    EXPECT_NE(status.find("\"state\":\"done\""), std::string::npos)
        << status;
    EXPECT_THROW(queue.submit(spec.toJson()), std::runtime_error);
}

} // namespace
} // namespace dtann
