/**
 * @file
 * Scenario-spec tests: parse -> toJson -> parse identity for every
 * campaign kind, the Fig 5 sweep expander, env overrides, and the
 * error messages malformed specs produce.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/json.hh"
#include "service/builtin_specs.hh"
#include "service/runner.hh"
#include "service/spec.hh"

namespace dtann {
namespace {

TEST(ScenarioSpec, RoundTripIsIdentityForEveryBuiltin)
{
    for (const std::string &kind : builtinSpecNames())
        for (bool full : {false, true}) {
            ScenarioSpec spec = builtinSpec(kind, full);
            std::string echo = spec.toJson();
            ScenarioSpec reparsed = ScenarioSpec::parse(echo);
            EXPECT_EQ(reparsed.toJson(), echo)
                << kind << (full ? " full" : " quick");
            EXPECT_EQ(reparsed.kind, kind);
        }
}

TEST(ScenarioSpec, ParsePopulatesConfigFields)
{
    ScenarioSpec spec = ScenarioSpec::parse(R"({
        "kind": "fig10",
        "name": "my-run",
        "repetitions": 5,
        "seed": 99,
        "tasks": ["iris", "wine"],
        "folds": 3,
        "rows": 120,
        "epoch_scale": 0.5,
        "retrain_scale": 0.4,
        "defect_counts": [0, 4, 8],
        "retrain": false
    })");
    EXPECT_EQ(spec.kind, "fig10");
    EXPECT_EQ(spec.name, "my-run");
    EXPECT_EQ(spec.fig10.repetitions, 5);
    EXPECT_EQ(spec.fig10.seed, 99u);
    EXPECT_EQ(spec.fig10.tasks,
              (std::vector<std::string>{"iris", "wine"}));
    EXPECT_EQ(spec.fig10.folds, 3);
    EXPECT_EQ(spec.fig10.rows, 120u);
    EXPECT_DOUBLE_EQ(spec.fig10.epochScale, 0.5);
    EXPECT_EQ(spec.fig10.defectCounts, (std::vector<int>{0, 4, 8}));
    EXPECT_FALSE(spec.fig10.retrain);
}

TEST(ScenarioSpec, OmittedFieldsKeepDefaults)
{
    ScenarioSpec spec = ScenarioSpec::parse("{\"kind\": \"fig11\"}");
    Fig11Config defaults;
    EXPECT_EQ(spec.name, "fig11");
    EXPECT_EQ(spec.fig11.repetitions, defaults.repetitions);
    EXPECT_EQ(spec.fig11.folds, defaults.folds);
    EXPECT_EQ(spec.fig11.seed, defaults.seed);
}

TEST(ScenarioSpec, MitigationStrategiesAndPoolParse)
{
    ScenarioSpec spec = ScenarioSpec::parse(R"({
        "kind": "mitigation",
        "strategies": ["retrain", "remap", "clamp", "replicate"],
        "bist_vectors_per_unit": 4,
        "inject_pool": "output_critical"
    })");
    EXPECT_EQ(spec.mitigation.strategies,
              (std::vector<Strategy>{Strategy::RetrainOnly,
                                     Strategy::RemapToSpares,
                                     Strategy::ClampActivations,
                                     Strategy::ReplicateCritical}));
    EXPECT_EQ(spec.mitigation.bist.vectorsPerUnit, 4);
    EXPECT_EQ(spec.mitigation.injectPool, SitePool::outputCritical());

    // An omitted strategy list races every implemented strategy.
    ScenarioSpec all = ScenarioSpec::parse("{\"kind\": \"mitigation\"}");
    EXPECT_EQ(all.mitigation.strategies, allStrategies());
}

/** Expect parse(text) to throw a JsonError mentioning @p needle. */
void
expectSpecError(const std::string &text, const std::string &needle)
{
    try {
        ScenarioSpec::parse(text);
        FAIL() << "expected JsonError for: " << text;
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find(needle),
                  std::string::npos)
            << "message '" << e.what() << "' lacks '" << needle << "'";
    }
}

TEST(ScenarioSpec, MalformedSpecsNameTheProblem)
{
    expectSpecError("[1, 2]", "object");
    expectSpecError("{}", "kind");
    expectSpecError("{\"kind\": \"fig12\"}",
                    "unknown campaign kind 'fig12'");
    expectSpecError("{\"kind\": \"fig12\"}", "fig5, fig10");
    expectSpecError("{\"kind\": \"fig10\", \"repetitions\": 0}",
                    "repetitions");
    expectSpecError("{\"kind\": \"fig10\", \"folds\": \"many\"}",
                    "folds");
    expectSpecError("{\"kind\": \"fig5\", \"operators\": [\"nand\"]}",
                    "unknown operator 'nand'");
    expectSpecError("{\"kind\": \"fig5\", \"fa_style\": \"tree\"}",
                    "unknown fa_style 'tree'");
    expectSpecError(
        "{\"kind\": \"mitigation\", \"strategies\": [\"pray\"]}",
        "unknown strategy 'pray'");
    // The message names every accepted strategy.
    expectSpecError(
        "{\"kind\": \"mitigation\", \"strategies\": [\"pray\"]}",
        strategyNameList());
    expectSpecError(
        "{\"kind\": \"fig10\", \"weighting\": \"alphabetical\"}",
        "unknown weighting");
    expectSpecError("{\"kind\": \"fig10\",", "line 1");
}

TEST(Fig5Sweep, ExpandCrossProductsOperatorByDefects)
{
    Fig5Sweep sweep;
    sweep.seed = 50;
    sweep.repetitions = 7;
    sweep.threads = 3;
    sweep.operators = {Fig5Operator::Adder4, Fig5Operator::Multiplier4};
    sweep.defectCounts = {1, 5, 20};
    sweep.style = FaStyle::Mirror;

    std::vector<Fig5Config> cells = sweep.expand();
    ASSERT_EQ(cells.size(), 6u);
    // Operator-major order, each with a variant-derived seed.
    EXPECT_EQ(cells[0].op, Fig5Operator::Adder4);
    EXPECT_EQ(cells[0].defects, 1);
    EXPECT_EQ(cells[0].seed, 51u); // 50 + 1 + 1000*0
    EXPECT_EQ(cells[2].defects, 20);
    EXPECT_EQ(cells[2].seed, 70u);
    EXPECT_EQ(cells[3].op, Fig5Operator::Multiplier4);
    EXPECT_EQ(cells[3].seed, 1051u); // 50 + 1 + 1000*1
    for (const Fig5Config &c : cells) {
        EXPECT_EQ(c.repetitions, 7);
        EXPECT_EQ(c.threads, 3);
        EXPECT_EQ(c.style, FaStyle::Mirror);
    }
}

TEST(EnvOverrides, SeedAndThreadsBeatTheSpecOnlyWhenSet)
{
    ScenarioSpec spec = builtinSpec("fig10", false);
    uint64_t spec_seed = spec.fig10.seed;

    unsetenv("DTANN_SEED");
    unsetenv("DTANN_THREADS");
    applyEnvOverrides(spec);
    EXPECT_EQ(spec.runConfig().seed, spec_seed);
    EXPECT_EQ(spec.runConfig().threads, 0);

    setenv("DTANN_SEED", "424242", 1);
    setenv("DTANN_THREADS", "2", 1);
    applyEnvOverrides(spec);
    EXPECT_EQ(spec.runConfig().seed, 424242u);
    EXPECT_EQ(spec.runConfig().threads, 2);
    unsetenv("DTANN_SEED");
    unsetenv("DTANN_THREADS");
}

} // namespace
} // namespace dtann
