/**
 * @file
 * HTTP wire-layer tests: the incremental parser's happy paths and
 * every rejection class — malformed start lines and headers (400),
 * oversized bodies (413) and header sections (431), unsupported
 * transfer codings (501) — plus the property the daemon's socket
 * loop depends on: a proper prefix of a valid message is never an
 * Error, so truncation is always distinguishable from garbage.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/http.hh"

namespace dtann {
namespace {

using State = HttpParser::State;

HttpParser
feedAll(const std::string &bytes,
        HttpParser::Mode mode = HttpParser::Mode::Request,
        size_t max_body = HttpParser::kDefaultMaxBody,
        size_t max_headers = HttpParser::kDefaultMaxHeaders)
{
    HttpParser p(mode, max_body, max_headers);
    p.feed(bytes);
    return p;
}

TEST(HttpParser, SimpleRequestLine)
{
    HttpParser p =
        feedAll("GET /jobs/3?x=1 HTTP/1.1\r\nHost: a\r\n\r\n");
    ASSERT_EQ(p.state(), State::Done);
    EXPECT_EQ(p.message().method, "GET");
    EXPECT_EQ(p.message().target, "/jobs/3?x=1");
    EXPECT_EQ(p.message().path(), "/jobs/3");
    EXPECT_EQ(p.message().query(), "x=1");
    EXPECT_EQ(p.message().version, "HTTP/1.1");
    EXPECT_EQ(p.message().header("host"), "a");
    EXPECT_TRUE(p.message().body.empty());
}

TEST(HttpParser, HeaderNamesLowerCasedValuesTrimmed)
{
    HttpParser p = feedAll(
        "GET / HTTP/1.1\r\nCoNtEnT-TyPe:   text/plain  \r\n\r\n");
    ASSERT_EQ(p.state(), State::Done);
    EXPECT_EQ(p.message().header("content-type"), "text/plain");
}

TEST(HttpParser, BareLfLineEndings)
{
    HttpParser p = feedAll(
        "POST /jobs HTTP/1.1\ncontent-length: 2\n\nhi");
    ASSERT_EQ(p.state(), State::Done);
    EXPECT_EQ(p.message().body, "hi");
}

TEST(HttpParser, LeadingBlankLinesTolerated)
{
    HttpParser p = feedAll("\r\n\r\nGET / HTTP/1.1\r\n\r\n");
    ASSERT_EQ(p.state(), State::Done);
    EXPECT_EQ(p.message().method, "GET");
}

TEST(HttpParser, FixedBodySplitAcrossFeeds)
{
    HttpParser p;
    EXPECT_EQ(p.feed("POST /jobs HTTP/1.1\r\ncontent-le"),
              State::NeedMore);
    EXPECT_EQ(p.feed("ngth: 10\r\n\r\n{\"kind"), State::NeedMore);
    EXPECT_EQ(p.feed("\":1}"), State::Done);
    EXPECT_EQ(p.message().body, "{\"kind\":1}");
    // Trailing bytes after the complete message are ignored.
    EXPECT_EQ(p.feed("GARBAGE"), State::Done);
}

TEST(HttpParser, ByteAtATimeIsNeverAnError)
{
    const std::string request =
        "POST /jobs HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "Transfer-Encoding: chunked\r\n"
        "\r\n"
        "4;ext=1\r\nWiki\r\n"
        "5\r\npedia\r\n"
        "0\r\n"
        "X-Trailer: ignored\r\n"
        "\r\n";
    // Every prefix must be NeedMore (or Done at the very end):
    // truncation is never misdiagnosed as malformed input.
    for (size_t cut = 0; cut <= request.size(); ++cut) {
        HttpParser p = feedAll(request.substr(0, cut));
        if (cut < request.size())
            EXPECT_EQ(p.state(), State::NeedMore) << "cut=" << cut;
        else
            EXPECT_EQ(p.state(), State::Done);
    }
    // And byte-at-a-time delivery assembles the same message.
    HttpParser p;
    for (char c : request)
        p.feed(&c, 1);
    ASSERT_EQ(p.state(), State::Done);
    EXPECT_EQ(p.message().body, "Wikipedia");
}

TEST(HttpParser, TruncatedRequestIs400OnFinish)
{
    HttpParser p =
        feedAll("POST /jobs HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort");
    EXPECT_EQ(p.state(), State::NeedMore);
    EXPECT_EQ(p.finish(), State::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, MalformedStartLines)
{
    EXPECT_EQ(feedAll("GET\r\n\r\n").state(), State::Error);
    EXPECT_EQ(feedAll("GET /\r\n\r\n").state(), State::Error);
    EXPECT_EQ(feedAll("GET / NOTHTTP/9\r\n\r\n").state(),
              State::Error);
    HttpParser p = feedAll("GET / NOTHTTP/9\r\n\r\n");
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, FoldedHeaderRejected)
{
    HttpParser p = feedAll(
        "GET / HTTP/1.1\r\nx-a: 1\r\n  folded\r\n\r\n");
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, HeaderWithoutColonRejected)
{
    HttpParser p = feedAll("GET / HTTP/1.1\r\nnocolon\r\n\r\n");
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, ConflictingContentLengthsRejected)
{
    HttpParser p = feedAll(
        "POST / HTTP/1.1\r\ncontent-length: 2\r\n"
        "content-length: 3\r\n\r\nab");
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, GarbageContentLengthRejected)
{
    HttpParser p = feedAll(
        "POST / HTTP/1.1\r\ncontent-length: 12abc\r\n\r\n");
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, BadChunkSizeRejected)
{
    HttpParser p = feedAll(
        "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
        "zz\r\n");
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, MissingChunkTerminatorRejected)
{
    HttpParser p = feedAll(
        "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
        "4\r\nWikiXX\r\n");
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 400);
}

TEST(HttpParser, OversizedFixedBodyIs413)
{
    HttpParser p = feedAll(
        "POST / HTTP/1.1\r\ncontent-length: 100\r\n\r\n",
        HttpParser::Mode::Request, /*max_body=*/10);
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 413);
}

TEST(HttpParser, OversizedChunkedBodyIs413)
{
    std::string req =
        "POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
        "8\r\nAAAAAAAA\r\n8\r\nBBBBBBBB\r\n";
    HttpParser p = feedAll(req, HttpParser::Mode::Request,
                           /*max_body=*/10);
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 413);
}

TEST(HttpParser, OversizedHeaderSectionIs431)
{
    std::string req = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 50; ++i)
        req += "x-filler-" + std::to_string(i) + ": " +
               std::string(100, 'a') + "\r\n";
    req += "\r\n";
    HttpParser p = feedAll(req, HttpParser::Mode::Request,
                           HttpParser::kDefaultMaxBody,
                           /*max_headers=*/512);
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 431);
}

TEST(HttpParser, UnsupportedTransferEncodingIs501)
{
    HttpParser p = feedAll(
        "POST / HTTP/1.1\r\ntransfer-encoding: gzip\r\n\r\n");
    EXPECT_EQ(p.state(), State::Error);
    EXPECT_EQ(p.errorStatus(), 501);
}

TEST(HttpParser, ResponseWithContentLength)
{
    HttpParser p = feedAll(
        "HTTP/1.1 404 Not Found\r\ncontent-length: 2\r\n\r\nno",
        HttpParser::Mode::Response);
    ASSERT_EQ(p.state(), State::Done);
    EXPECT_EQ(p.message().status, 404);
    EXPECT_EQ(p.message().reason, "Not Found");
    EXPECT_EQ(p.message().body, "no");
}

TEST(HttpParser, ResponseBodyUntilClose)
{
    HttpParser p(HttpParser::Mode::Response);
    p.feed("HTTP/1.1 200 OK\r\n\r\npart");
    EXPECT_EQ(p.state(), State::NeedMore);
    p.feed("ial");
    EXPECT_EQ(p.finish(), State::Done);
    EXPECT_EQ(p.message().body, "partial");
}

TEST(HttpWire, ResponseRoundTrip)
{
    std::string wire = httpResponse(200, "{\"ok\":true}");
    HttpParser p = feedAll(wire, HttpParser::Mode::Response);
    ASSERT_EQ(p.state(), State::Done);
    EXPECT_EQ(p.message().status, 200);
    EXPECT_EQ(p.message().header("content-type"), "application/json");
    EXPECT_EQ(p.message().header("connection"), "close");
    EXPECT_EQ(p.message().body, "{\"ok\":true}");
}

TEST(HttpWire, RequestRoundTrip)
{
    std::string wire = httpRequest("POST", "/jobs", "{\"kind\":1}");
    HttpParser p = feedAll(wire);
    ASSERT_EQ(p.state(), State::Done);
    EXPECT_EQ(p.message().method, "POST");
    EXPECT_EQ(p.message().target, "/jobs");
    EXPECT_EQ(p.message().body, "{\"kind\":1}");
}

} // namespace
} // namespace dtann
