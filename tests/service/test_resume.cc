/**
 * @file
 * Kill-and-resume bit-identity: a campaign resumed from a
 * truncated journal must produce byte-for-byte the same export as
 * an uninterrupted run — the tentpole contract of the service
 * layer. Also covers the corrupt-payload path (recompute, don't
 * crash) and full-journal replays that do no simulation work.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "service/journal.hh"
#include "service/runner.hh"

namespace dtann {
namespace {

std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + "dtann_" + stem + "_" +
        std::to_string(::getpid()) + ".jnl";
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path,
           const std::vector<std::string> &lines)
{
    std::ofstream out(path);
    for (const std::string &l : lines)
        out << l << "\n";
}

/** Run @p spec against a journal at @p path. */
std::string
runWithJournal(ScenarioSpec spec, const std::string &path,
               size_t *resumed = nullptr)
{
    ResultJournal journal(path, spec.journalEcho());
    if (resumed != nullptr)
        *resumed = journal.resumedCells();
    spec.runConfig().journal = &journal;
    return runScenario(spec).json;
}

/** A seconds-scale fig10 campaign with several journalable cells. */
ScenarioSpec
tinyFig10()
{
    ScenarioSpec spec;
    spec.kind = spec.name = "fig10";
    spec.fig10.tasks = {"iris"};
    spec.fig10.defectCounts = {0, 3};
    spec.fig10.repetitions = 3;
    spec.fig10.folds = 2;
    spec.fig10.rows = 90;
    spec.fig10.epochScale = 0.1;
    spec.fig10.retrainScale = 0.2;
    spec.fig10.seed = 11;
    spec.fig10.threads = 2;
    return spec;
}

ScenarioSpec
tinyFig5()
{
    ScenarioSpec spec;
    spec.kind = spec.name = "fig5";
    spec.fig5.operators = {Fig5Operator::Adder4,
                           Fig5Operator::Multiplier4};
    spec.fig5.defectCounts = {2};
    spec.fig5.repetitions = 4;
    spec.fig5.seed = 5;
    spec.fig5.threads = 2;
    return spec;
}

ScenarioSpec
tinyMitigation()
{
    ScenarioSpec spec;
    spec.kind = spec.name = "mitigation";
    spec.mitigation.tasks = {"iris"};
    spec.mitigation.defectCounts = {0, 4};
    spec.mitigation.strategies = {Strategy::RetrainOnly,
                                  Strategy::RemapToSpares};
    spec.mitigation.repetitions = 2;
    spec.mitigation.folds = 2;
    spec.mitigation.rows = 90;
    spec.mitigation.epochScale = 0.1;
    spec.mitigation.retrainScale = 0.2;
    spec.mitigation.bist.vectorsPerUnit = 4;
    spec.mitigation.seed = 13;
    spec.mitigation.threads = 2;
    return spec;
}

class ResumeBitIdentity
    : public testing::TestWithParam<ScenarioSpec (*)()>
{
};

TEST_P(ResumeBitIdentity, TruncatedJournalResumesExactly)
{
    ScenarioSpec spec = GetParam()();
    std::string path = tempPath("resume_" + spec.kind);
    std::remove(path.c_str());

    // Ground truth: no journal at all.
    std::string expected = runScenario(spec).json;

    // First run journals every cell and matches the journal-less run.
    EXPECT_EQ(runWithJournal(spec, path), expected);

    std::vector<std::string> lines = readLines(path);
    ASSERT_GT(lines.size(), 3u) << "want cells to truncate";

    // Kill simulation: drop the tail, keep header + a cell prefix.
    std::vector<std::string> truncated(
        lines.begin(), lines.begin() + (lines.size() / 2 + 1));
    writeLines(path, truncated);

    size_t resumed = 0;
    EXPECT_EQ(runWithJournal(spec, path, &resumed), expected);
    EXPECT_EQ(resumed, truncated.size() - 1);

    // A complete journal replays everything, still bit-identically.
    size_t all = 0;
    EXPECT_EQ(runWithJournal(spec, path, &all), expected);
    EXPECT_EQ(all, lines.size() - 1);
    std::remove(path.c_str());
}

TEST_P(ResumeBitIdentity, ShardedWorkersMergeBitIdentically)
{
    // The multi-process campaign contract: two workers each compute
    // the cells with index % 2 == shard into their own journals;
    // absorbing both into one journal and replaying unsharded must
    // reproduce the single-process export byte for byte.
    ScenarioSpec spec = GetParam()();
    std::string expected = runScenario(spec).json;

    std::string shard0 = tempPath("shard0_" + spec.kind);
    std::string shard1 = tempPath("shard1_" + spec.kind);
    std::string merged = tempPath("sharded_" + spec.kind);
    std::remove(shard0.c_str());
    std::remove(shard1.c_str());
    std::remove(merged.c_str());

    size_t cells[2] = {0, 0};
    for (int k = 0; k < 2; ++k) {
        ScenarioSpec worker = spec;
        worker.runConfig().shardCount = 2;
        worker.runConfig().shardIndex = k;
        // Shard coordinates are execution context, not data: the
        // echo matches the unsharded spec, so the parent can absorb.
        EXPECT_EQ(worker.journalEcho(), spec.journalEcho());
        ResultJournal journal(k == 0 ? shard0 : shard1,
                              worker.journalEcho());
        worker.runConfig().journal = &journal;
        runScenario(worker); // partial export, ignored by design
        cells[k] = readLines(k == 0 ? shard0 : shard1).size() - 1;
    }
    EXPECT_GT(cells[0], 0u);
    EXPECT_GT(cells[1], 0u);

    ResultJournal journal(merged, spec.journalEcho());
    EXPECT_EQ(journal.absorb(shard0), cells[0]);
    EXPECT_EQ(journal.absorb(shard1), cells[1]);
    ScenarioSpec replay = spec;
    replay.runConfig().journal = &journal;
    EXPECT_EQ(runScenario(replay).json, expected);

    std::remove(shard0.c_str());
    std::remove(shard1.c_str());
    std::remove(merged.c_str());
}

TEST_P(ResumeBitIdentity, DeadShardCellsAreRecomputedOnReplay)
{
    // A worker killed mid-job leaves a short (or missing) shard
    // journal; the parent's unsharded replay recomputes whatever is
    // absent and still exports byte-identically.
    ScenarioSpec spec = GetParam()();
    std::string expected = runScenario(spec).json;

    std::string shard0 = tempPath("deadshard_" + spec.kind);
    std::string merged = tempPath("deadmerge_" + spec.kind);
    std::remove(shard0.c_str());
    std::remove(merged.c_str());

    {
        ScenarioSpec worker = spec;
        worker.runConfig().shardCount = 2;
        worker.runConfig().shardIndex = 0;
        ResultJournal journal(shard0, worker.journalEcho());
        worker.runConfig().journal = &journal;
        runScenario(worker);
    }
    // Shard 1 "died" before journaling anything at all.
    ResultJournal journal(merged, spec.journalEcho());
    EXPECT_GT(journal.absorb(shard0), 0u);
    ScenarioSpec replay = spec;
    replay.runConfig().journal = &journal;
    EXPECT_EQ(runScenario(replay).json, expected);

    std::remove(shard0.c_str());
    std::remove(merged.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Campaigns, ResumeBitIdentity,
    testing::Values(&tinyFig10, &tinyFig5, &tinyMitigation),
    [](const testing::TestParamInfo<ScenarioSpec (*)()> &info) {
        return info.param().kind;
    });

TEST(Resume, CorruptPayloadRecomputesBitIdentically)
{
    ScenarioSpec spec = tinyFig10();
    std::string path = tempPath("corrupt");
    std::remove(path.c_str());

    std::string expected = runWithJournal(spec, path);

    // Mangle one journaled payload into undecodable JSON. The
    // resumed run must warn, recompute that cell, and still match.
    std::vector<std::string> lines = readLines(path);
    ASSERT_GT(lines.size(), 2u);
    lines[2] = lines[2].substr(0, lines[2].find("\"payload\"")) +
        "\"payload\":\"{\\\"not\\\": \\\"a cell\\\"}\"}";
    writeLines(path, lines);

    EXPECT_EQ(runWithJournal(spec, path), expected);
    std::remove(path.c_str());
}

TEST(Resume, FieldStrippedPayloadRecomputesBitIdentically)
{
    // Journal-compat regression: a journal written by an older build
    // can lack per-cell fields this build requires (and carry extras
    // it has never heard of). Replay must tolerate both — recompute
    // the incomplete cell instead of aborting or default-filling,
    // ignore the unknown field — and still export byte-identically.
    ScenarioSpec spec = tinyMitigation();
    std::string path = tempPath("stripped");
    std::remove(path.c_str());

    std::string expected = runWithJournal(spec, path);

    std::vector<std::string> lines = readLines(path);
    ASSERT_GT(lines.size(), 4u);
    // Strip the "coverage" field from the first cell payload (the
    // payload is an escaped JSON string, so the field text carries
    // backslash-quotes), simulating a pre-coverage build's journal.
    bool stripped = false, extended = false;
    for (std::string &line : lines) {
        size_t start = line.find(",\\\"coverage\\\":");
        if (!stripped && start != std::string::npos) {
            size_t end = line.find(",\\\"diagnosed\\\"");
            ASSERT_NE(end, std::string::npos);
            line.erase(start, end - start);
            stripped = true;
            continue;
        }
        // Add an unknown field to a different cell: a *newer* build's
        // journal replays fine as long as the known fields are there.
        size_t sim = line.find(",\\\"sim\\\"");
        if (stripped && !extended && sim != std::string::npos) {
            line.insert(sim, ",\\\"from_the_future\\\":42");
            extended = true;
        }
    }
    ASSERT_TRUE(stripped) << "no mitigation payload carried coverage";
    ASSERT_TRUE(extended);
    writeLines(path, lines);

    EXPECT_EQ(runWithJournal(spec, path), expected);
    std::remove(path.c_str());
}

TEST(Resume, ThreadCountInvariantWithJournal)
{
    // Journaled replay must not depend on scheduling: resume with a
    // different thread count and still match.
    ScenarioSpec spec = tinyFig10();
    std::string path = tempPath("threads");
    std::remove(path.c_str());

    std::string expected = runScenario(spec).json;
    runWithJournal(spec, path);

    std::vector<std::string> lines = readLines(path);
    writeLines(path, {lines.begin(), lines.begin() + 2});

    // The journal echo normalizes the thread count away, so the
    // same journal serves any execution width.
    ScenarioSpec wide = spec;
    wide.fig10.threads = 4;
    EXPECT_EQ(runWithJournal(wide, path), expected);
    std::remove(path.c_str());
}

} // namespace
} // namespace dtann
