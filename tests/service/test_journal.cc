/**
 * @file
 * ResultJournal tests: the JSONL checkpoint store — append, reopen,
 * spec binding, and tolerance of the partial trailing line a killed
 * run leaves behind.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/json.hh"
#include "service/journal.hh"

namespace dtann {
namespace {

std::string
tempPath(const std::string &stem)
{
    return testing::TempDir() + "dtann_" + stem + "_" +
        std::to_string(::getpid()) + ".jnl";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream s;
    s << in.rdbuf();
    return s.str();
}

TEST(ResultJournal, StoreThenReopenReplays)
{
    std::string path = tempPath("reopen");
    std::remove(path.c_str());
    CellKey a{"fig10", "iris", "v0:d0", 0};
    CellKey b{"fig10", "iris", "v1:d4", 3};
    {
        ResultJournal j(path, "{\"kind\":\"fig10\"}");
        EXPECT_EQ(j.resumedCells(), 0u);
        std::string payload;
        EXPECT_FALSE(j.lookup(a, payload));
        j.store(a, "{\"accuracy\":0.5}");
        j.store(b, "{\"accuracy\":0.25}");
    }
    ResultJournal j(path, "{\"kind\":\"fig10\"}");
    EXPECT_EQ(j.resumedCells(), 2u);
    std::string payload;
    ASSERT_TRUE(j.lookup(a, payload));
    EXPECT_EQ(payload, "{\"accuracy\":0.5}");
    ASSERT_TRUE(j.lookup(b, payload));
    EXPECT_EQ(payload, "{\"accuracy\":0.25}");
    EXPECT_FALSE(j.lookup({"fig10", "iris", "v0:d0", 1}, payload));
    std::remove(path.c_str());
}

TEST(ResultJournal, RejectsDifferentSpec)
{
    std::string path = tempPath("mismatch");
    std::remove(path.c_str());
    { ResultJournal j(path, "{\"seed\":1}"); }
    EXPECT_THROW(ResultJournal(path, "{\"seed\":2}"), JsonError);
    std::remove(path.c_str());
}

TEST(ResultJournal, RejectsForeignFiles)
{
    std::string path = tempPath("foreign");
    {
        std::ofstream out(path);
        out << "{\"some\":\"other file\"}\n";
    }
    EXPECT_THROW(ResultJournal(path, "{}"), JsonError);
    std::remove(path.c_str());
}

TEST(ResultJournal, ToleratesPartialTrailingLine)
{
    std::string path = tempPath("partial");
    std::remove(path.c_str());
    {
        ResultJournal j(path, "{}");
        j.store({"fig5", "adder4", "d2", 0}, "{\"x\":1}");
    }
    // Simulate a kill mid-append: a truncated final line.
    {
        std::ofstream out(path, std::ios::app);
        out << "{\"cell\":\"fig5/adder4/d2/1\",\"payl";
    }
    {
        ResultJournal j(path, "{}");
        EXPECT_EQ(j.resumedCells(), 1u);
        std::string payload;
        EXPECT_TRUE(j.lookup({"fig5", "adder4", "d2", 0}, payload));
        EXPECT_FALSE(j.lookup({"fig5", "adder4", "d2", 1}, payload));
        // The journal stays usable for appends after the bad line.
        j.store({"fig5", "adder4", "d2", 2}, "{\"x\":3}");
    }
    ResultJournal j2(path, "{}");
    EXPECT_EQ(j2.resumedCells(), 2u);
    std::remove(path.c_str());
}

TEST(ResultJournal, StoreIsAppendOncePerKey)
{
    std::string path = tempPath("idem");
    std::remove(path.c_str());
    {
        ResultJournal j(path, "{}");
        j.store({"fig5", "adder4", "d1", 0}, "{\"x\":1}");
        j.store({"fig5", "adder4", "d1", 0}, "{\"x\":1}");
    }
    std::string text = slurp(path);
    size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, 2u); // header + one cell
    std::remove(path.c_str());
}

TEST(ResultJournal, PayloadsSurviveEscaping)
{
    // Payloads are stored as escaped JSON strings; the exact bytes
    // must come back (the bit-identical-resume contract).
    std::string path = tempPath("escape");
    std::remove(path.c_str());
    std::string payload =
        "{\"site\":\"output adder \\\"7\\\"\",\"v\":0.1}";
    {
        ResultJournal j(path, "{}");
        j.store({"fig11", "iris", "v0", 0}, payload);
    }
    ResultJournal j(path, "{}");
    std::string got;
    ASSERT_TRUE(j.lookup({"fig11", "iris", "v0", 0}, got));
    EXPECT_EQ(got, payload);
    std::remove(path.c_str());
}

TEST(ResultJournal, SecondWriterIsRejected)
{
    // The advisory flock is per open-file-description, so even a
    // second journal in the same process conflicts — exactly the
    // driver-vs-daemon double-resume the guard exists to stop.
    std::string path = tempPath("locked");
    std::remove(path.c_str());
    ResultJournal first(path, "{}");
    try {
        ResultJournal second(path, "{}");
        FAIL() << "second writer must be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "locked by another process"),
                  std::string::npos)
            << e.what();
    }
    // The failed open must not have broken the holder's lock.
    first.store({"fig5", "adder4", "d2", 0}, "{}");
    std::remove(path.c_str());
}

TEST(ResultJournal, LockReleasedOnDestroy)
{
    std::string path = tempPath("relock");
    std::remove(path.c_str());
    {
        ResultJournal j(path, "{}");
    }
    EXPECT_NO_THROW(ResultJournal(path, "{}"));
    std::remove(path.c_str());
}

TEST(CellKey, CanonicalString)
{
    CellKey k{"mitigation", "breast", "v2:d4:bypass", 17};
    EXPECT_EQ(k.toString(), "mitigation/breast/v2:d4:bypass/17");
}

TEST(ResultJournal, AbsorbMergesShardJournals)
{
    // The sharded-campaign merge: worker shards journal disjoint
    // cell sets into their own files; the parent absorbs them all
    // and serves every cell.
    std::string shard0 = tempPath("absorb_s0");
    std::string shard1 = tempPath("absorb_s1");
    std::string merged = tempPath("absorb_merged");
    std::remove(shard0.c_str());
    std::remove(shard1.c_str());
    std::remove(merged.c_str());

    CellKey a{"fig10", "iris", "v0:d0", 0};
    CellKey b{"fig10", "iris", "v0:d0", 1};
    CellKey c{"fig10", "iris", "v1:d4", 0};
    {
        ResultJournal j(shard0, "{\"kind\":\"fig10\"}");
        j.store(a, "{\"accuracy\":0.5}");
        j.store(c, "{\"accuracy\":0.25}");
    }
    {
        ResultJournal j(shard1, "{\"kind\":\"fig10\"}");
        j.store(b, "{\"accuracy\":0.75}");
        j.store(c, "{\"accuracy\":0.25}"); // duplicate of shard0's
    }

    ResultJournal j(merged, "{\"kind\":\"fig10\"}");
    EXPECT_EQ(j.absorb(shard0), 2u);
    EXPECT_EQ(j.absorb(shard1), 1u); // c already absorbed
    std::string payload;
    ASSERT_TRUE(j.lookup(a, payload));
    EXPECT_EQ(payload, "{\"accuracy\":0.5}");
    ASSERT_TRUE(j.lookup(b, payload));
    EXPECT_EQ(payload, "{\"accuracy\":0.75}");
    ASSERT_TRUE(j.lookup(c, payload));
    EXPECT_EQ(payload, "{\"accuracy\":0.25}");
    std::remove(shard0.c_str());
    std::remove(shard1.c_str());
    std::remove(merged.c_str());
}

TEST(ResultJournal, AbsorbedCellsSurviveReopen)
{
    std::string shard = tempPath("absorb_persist_s");
    std::string merged = tempPath("absorb_persist_m");
    std::remove(shard.c_str());
    std::remove(merged.c_str());
    CellKey a{"fig5", "adder4", "d2", 3};
    {
        ResultJournal j(shard, "{\"op\":\"adder4\"}");
        j.store(a, "{\"hist\":[1,2]}");
    }
    {
        ResultJournal j(merged, "{\"op\":\"adder4\"}");
        EXPECT_EQ(j.absorb(shard), 1u);
    }
    // Absorption appends to the merged file, so the cells are there
    // after reopening — the daemon's replay depends on this.
    ResultJournal j(merged, "{\"op\":\"adder4\"}");
    EXPECT_EQ(j.resumedCells(), 1u);
    std::string payload;
    ASSERT_TRUE(j.lookup(a, payload));
    EXPECT_EQ(payload, "{\"hist\":[1,2]}");
    std::remove(shard.c_str());
    std::remove(merged.c_str());
}

TEST(ResultJournal, AbsorbSkipsForeignAndMissingFiles)
{
    std::string merged = tempPath("absorb_guard_m");
    std::string foreign = tempPath("absorb_guard_f");
    std::string other = tempPath("absorb_guard_o");
    std::remove(merged.c_str());
    std::remove(other.c_str());
    {
        std::ofstream out(foreign);
        out << "not json at all\n";
    }
    {
        // A shard journal bound to a different spec must be skipped
        // whole — absorbing cells keyed by another campaign would
        // poison the replay.
        ResultJournal j(other, "{\"seed\":2}");
        j.store({"fig5", "adder4", "d1", 0}, "{}");
    }
    ResultJournal j(merged, "{\"seed\":1}");
    EXPECT_EQ(j.absorb(foreign), 0u);
    EXPECT_EQ(j.absorb(other), 0u);
    EXPECT_EQ(j.absorb(merged + ".does-not-exist"), 0u);
    std::remove(merged.c_str());
    std::remove(foreign.c_str());
    std::remove(other.c_str());
}

} // namespace
} // namespace dtann
