/**
 * @file
 * Backend-era journal compatibility: journals and exports written
 * before the spec carried a `backend` field must keep working —
 * the stored echo parses as an implicit spatial spec, resumes
 * without recomputation, and the refactored SpatialBackend
 * reproduces the pre-refactor results bit for bit (fresh, resumed,
 * and sharded). The fixtures under tests/fixtures/ were captured
 * from the last pre-backend build.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "service/journal.hh"
#include "service/runner.hh"

namespace dtann {
namespace {

std::string
fixturePath(const std::string &name)
{
    return std::string(DTANN_FIXTURE_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
        text.pop_back();
    return text;
}

std::string
tempCopy(const std::string &source, const std::string &stem)
{
    std::string path = testing::TempDir() + "dtann_" + stem + "_" +
        std::to_string(::getpid()) + ".jnl";
    std::ofstream out(path, std::ios::trunc);
    out << readFile(source) << "\n";
    return path;
}

ScenarioSpec
fixtureSpec()
{
    return ScenarioSpec::parse(
        readFile(fixturePath("prerefactor_fig10.json")));
}

/**
 * The envelope tail from the top-level seed on: everything except
 * the config echo (which now carries the backend field the
 * pre-refactor build did not have) — seed, sim counters, results.
 */
std::string
envelopeTail(const std::string &envelope)
{
    size_t pos = envelope.find("},\"seed\":");
    EXPECT_NE(pos, std::string::npos) << envelope.substr(0, 120);
    return pos == std::string::npos ? envelope : envelope.substr(pos);
}

TEST(BackendResume, CurrentEchoNamesTheBackendExplicitly)
{
    ScenarioSpec spec = fixtureSpec();
    EXPECT_NE(spec.journalEcho().find("\"backend\":\"spatial\""),
              std::string::npos)
        << spec.journalEcho();
}

TEST(BackendResume, PreBackendJournalHeaderIsCompatible)
{
    // The stored spec echo predates the backend field; the journal
    // must recognize it as the same (implicitly spatial) campaign
    // and resume every cell instead of rejecting the header.
    ScenarioSpec spec = fixtureSpec();
    std::string path =
        tempCopy(fixturePath("prerefactor_fig10.jnl"), "hdr");
    ResultJournal journal(path, spec.journalEcho());
    EXPECT_EQ(journal.resumedCells(), 3u);
    std::remove(path.c_str());
}

TEST(BackendResume, PreBackendJournalReplaysBitIdentically)
{
    // Replaying the old journal does no simulation work and exports
    // the pre-refactor seed/sim/results bytes exactly.
    ScenarioSpec spec = fixtureSpec();
    std::string path =
        tempCopy(fixturePath("prerefactor_fig10.jnl"), "replay");
    ResultJournal journal(path, spec.journalEcho());
    ASSERT_EQ(journal.resumedCells(), 3u);
    spec.runConfig().journal = &journal;
    ScenarioResult result = runScenario(spec);
    EXPECT_EQ(
        envelopeTail(result.json),
        envelopeTail(readFile(fixturePath("prerefactor_fig10.result.json"))));
    std::remove(path.c_str());
}

TEST(BackendResume, FreshSpatialRunMatchesPreRefactorExport)
{
    // The refactor's ground-truth acceptance check: recomputing the
    // campaign from scratch on the extracted SpatialBackend yields
    // the pre-refactor export bit for bit.
    ScenarioSpec spec = fixtureSpec();
    EXPECT_EQ(
        envelopeTail(runScenario(spec).json),
        envelopeTail(readFile(fixturePath("prerefactor_fig10.result.json"))));
}

TEST(BackendResume, ShardedRunMatchesPreRefactorExport)
{
    // Shard the same campaign across two workers, absorb their
    // journals, and replay: still byte-identical to the
    // pre-refactor export.
    ScenarioSpec spec = fixtureSpec();
    std::string shard0 = testing::TempDir() + "dtann_prb_shard0_" +
        std::to_string(::getpid()) + ".jnl";
    std::string shard1 = testing::TempDir() + "dtann_prb_shard1_" +
        std::to_string(::getpid()) + ".jnl";
    std::string merged = testing::TempDir() + "dtann_prb_merged_" +
        std::to_string(::getpid()) + ".jnl";
    std::remove(shard0.c_str());
    std::remove(shard1.c_str());
    std::remove(merged.c_str());

    for (int k = 0; k < 2; ++k) {
        ScenarioSpec worker = fixtureSpec();
        worker.runConfig().shardCount = 2;
        worker.runConfig().shardIndex = k;
        ResultJournal journal(k == 0 ? shard0 : shard1,
                              worker.journalEcho());
        worker.runConfig().journal = &journal;
        runScenario(worker);
    }
    ResultJournal journal(merged, spec.journalEcho());
    EXPECT_GT(journal.absorb(shard0), 0u);
    EXPECT_GT(journal.absorb(shard1), 0u);
    spec.runConfig().journal = &journal;
    EXPECT_EQ(
        envelopeTail(runScenario(spec).json),
        envelopeTail(readFile(fixturePath("prerefactor_fig10.result.json"))));

    std::remove(shard0.c_str());
    std::remove(shard1.c_str());
    std::remove(merged.c_str());
}

} // namespace
} // namespace dtann
