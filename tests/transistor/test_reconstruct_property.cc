/**
 * @file
 * Property sweeps over the reconstruction engine.
 *
 * Physical intuition encoded as invariants:
 *  - shorts only ADD conduction: they can repair floating states
 *    but never create one, and never flip a driven 0;
 *  - opens only REMOVE conduction: they can float a node but never
 *    un-float one, and never flip a 1 into a driven 0;
 *  - any combination of defects still yields a well-formed
 *    three-valued function of the right arity.
 */

#include <gtest/gtest.h>

#include "transistor/reconstruct.hh"

namespace dtann {
namespace {

const std::vector<GateKind> realKinds = {
    GateKind::Not, GateKind::Nand2, GateKind::Nand3, GateKind::Nor2,
    GateKind::Nor3, GateKind::Aoi21, GateKind::Aoi22, GateKind::Oai21,
    GateKind::Oai22, GateKind::CarryN, GateKind::MirrorSumN};

class ReconstructProperty : public ::testing::TestWithParam<GateKind>
{
  protected:
    /** Count MEM entries of a function. */
    static int
    memCount(const GateFunction &f)
    {
        int count = 0;
        for (uint32_t in = 0; in < (1u << f.numInputs()); ++in)
            count += f.eval(in) == LogicValue::Mem;
        return count;
    }
};

TEST_P(ReconstructProperty, SingleShortNeverCreatesMem)
{
    GateKind kind = GetParam();
    for (const Defect &d : allSingleSwitchDefects(kind)) {
        if (d.kind != DefectKind::ShortSD)
            continue;
        ReconstructedGate rec = reconstruct(kind, {{d}});
        EXPECT_EQ(memCount(rec.function), 0)
            << gateName(kind) << " " << d.describe();
    }
}

TEST_P(ReconstructProperty, SingleOpenNeverRemovesDrivenValueToOpposite)
{
    // An open can only degrade a driven value to MEM, never flip
    // it: 1 -> {1, MEM}, 0 -> {0, MEM}.
    GateKind kind = GetParam();
    GateFunction clean = GateFunction::fromGateKind(kind);
    for (const Defect &d : allSingleSwitchDefects(kind)) {
        if (d.kind != DefectKind::Open)
            continue;
        ReconstructedGate rec = reconstruct(kind, {{d}});
        for (uint32_t in = 0; in < (1u << gateArity(kind)); ++in) {
            LogicValue before = clean.eval(in);
            LogicValue after = rec.function.eval(in);
            if (after != LogicValue::Mem)
                EXPECT_EQ(after, before)
                    << gateName(kind) << " " << d.describe()
                    << " in=" << in;
        }
    }
}

TEST_P(ReconstructProperty, ShortOnTopOfOpensCanOnlyShrinkMemSet)
{
    // Starting from each single open (which may float some inputs),
    // adding any single short must not grow the MEM set: shorts add
    // conduction paths.
    GateKind kind = GetParam();
    auto all = allSingleSwitchDefects(kind);
    for (const Defect &open : all) {
        if (open.kind != DefectKind::Open)
            continue;
        ReconstructedGate base = reconstruct(kind, {{open}});
        for (const Defect &sh : all) {
            if (sh.kind != DefectKind::ShortSD)
                continue;
            std::vector<Defect> both = {open, sh};
            ReconstructedGate rec = reconstruct(kind, both);
            for (uint32_t in = 0; in < (1u << gateArity(kind)); ++in) {
                if (rec.function.eval(in) == LogicValue::Mem)
                    EXPECT_EQ(base.function.eval(in), LogicValue::Mem)
                        << gateName(kind) << " " << open.describe()
                        << "+" << sh.describe() << " in=" << in;
            }
        }
    }
}

TEST_P(ReconstructProperty, RandomDefectPilesAreWellFormed)
{
    GateKind kind = GetParam();
    Rng rng(271);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<Defect> defects;
        int n = 1 + static_cast<int>(rng.nextUint(6));
        for (int i = 0; i < n; ++i)
            defects.push_back(randomDefect(kind, rng));
        ReconstructedGate rec = reconstruct(kind, defects);
        EXPECT_EQ(rec.function.numInputs(), gateArity(kind));
        for (uint32_t in = 0; in < (1u << gateArity(kind)); ++in) {
            LogicValue v = rec.function.eval(in);
            EXPECT_TRUE(v == LogicValue::Zero || v == LogicValue::One ||
                        v == LogicValue::Mem);
        }
    }
}

TEST_P(ReconstructProperty, AllBridgesEnumerateAndReconstruct)
{
    GateKind kind = GetParam();
    const GateSchematic &sch = schematicFor(kind);
    for (int pn = 0; pn < 2; ++pn) {
        const ChannelNetwork &net = pn ? sch.p : sch.n;
        for (uint8_t a = 0; a < net.numNodes; ++a) {
            for (uint8_t b = static_cast<uint8_t>(a + 1);
                 b < net.numNodes; ++b) {
                Defect d{DefectKind::Bridge, pn != 0, 0, a, b};
                ReconstructedGate rec = reconstruct(kind, {{d}});
                EXPECT_EQ(rec.function.numInputs(), gateArity(kind));
                // A rail-to-output bridge forces that network to
                // conduct always.
                if ((a == 0 && b == 1) || (a == 1 && b == 0)) {
                    for (uint32_t in = 0;
                         in < (1u << gateArity(kind)); ++in) {
                        LogicValue v = rec.function.eval(in);
                        if (pn == 0) {
                            // N network bridged: always grounded.
                            EXPECT_EQ(v, LogicValue::Zero);
                        } else {
                            // P bridged: 1 unless N conducts too.
                            EXPECT_NE(v, LogicValue::Mem);
                        }
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGateKinds, ReconstructProperty, ::testing::ValuesIn(realKinds),
    [](const auto &info) { return gateName(info.param); });

} // namespace
} // namespace dtann
