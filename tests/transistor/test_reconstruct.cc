/**
 * @file
 * Tests for faulty-gate reconstruction, including the paper's
 * Section III-B worked examples on the (a+b).(c+d) gate (OAI22).
 */

#include <gtest/gtest.h>

#include "transistor/reconstruct.hh"

namespace dtann {
namespace {

const std::vector<GateKind> realKinds = {
    GateKind::Not, GateKind::Nand2, GateKind::Nand3, GateKind::Nor2,
    GateKind::Nor3, GateKind::Aoi21, GateKind::Aoi22, GateKind::Oai21,
    GateKind::Oai22, GateKind::CarryN, GateKind::MirrorSumN};

class ReconstructClean : public ::testing::TestWithParam<GateKind>
{
};

TEST_P(ReconstructClean, NoDefectsReproducesTruthTable)
{
    // This validates every switch network against the gate's
    // boolean function: with no defects, exactly one channel
    // network conducts for each input (no MEM, no fight).
    ReconstructedGate rec = reconstruct(GetParam(), {});
    EXPECT_TRUE(rec.function.matchesKind(GetParam()))
        << gateName(GetParam());
    EXPECT_FALSE(rec.function.hasMem());
    EXPECT_FALSE(rec.delayed);
}

TEST_P(ReconstructClean, ShortsNeverFlipZeroToOne)
{
    // A source-drain short only adds conduction paths. If the clean
    // gate pulls the output low (Z_N = 1), the faulty gate still
    // does: ground dominates. So no single short can turn a 0 into
    // a 1 or a MEM.
    GateKind kind = GetParam();
    GateFunction clean = GateFunction::fromGateKind(kind);
    for (const Defect &d : allSingleSwitchDefects(kind)) {
        if (d.kind != DefectKind::ShortSD)
            continue;
        ReconstructedGate rec = reconstruct(kind, {{d}});
        for (uint32_t in = 0; in < (1u << gateArity(kind)); ++in)
            if (clean.eval(in) == LogicValue::Zero)
                EXPECT_EQ(rec.function.eval(in), LogicValue::Zero)
                    << gateName(kind) << " " << d.describe()
                    << " in=" << in;
    }
}

TEST_P(ReconstructClean, OpensNeverFlipOneToZero)
{
    // An open only removes conduction paths: a clean 1 (Z_P = 1,
    // Z_N = 0) can degrade to MEM but never to a driven 0.
    GateKind kind = GetParam();
    GateFunction clean = GateFunction::fromGateKind(kind);
    for (const Defect &d : allSingleSwitchDefects(kind)) {
        if (d.kind != DefectKind::Open)
            continue;
        ReconstructedGate rec = reconstruct(kind, {{d}});
        for (uint32_t in = 0; in < (1u << gateArity(kind)); ++in)
            if (clean.eval(in) == LogicValue::One)
                EXPECT_NE(rec.function.eval(in), LogicValue::Zero)
                    << gateName(kind) << " " << d.describe()
                    << " in=" << in;
    }
}

TEST_P(ReconstructClean, SomeSingleOpenIsObservable)
{
    // At least one single open changes the gate's behaviour (sanity
    // that defects are not uniformly masked).
    GateKind kind = GetParam();
    GateFunction clean = GateFunction::fromGateKind(kind);
    bool any_changed = false;
    for (const Defect &d : allSingleSwitchDefects(kind)) {
        if (d.kind != DefectKind::Open)
            continue;
        ReconstructedGate rec = reconstruct(kind, {{d}});
        if (!(rec.function == clean))
            any_changed = true;
    }
    EXPECT_TRUE(any_changed) << gateName(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllGateKinds, ReconstructClean, ::testing::ValuesIn(realKinds),
    [](const auto &info) { return gateName(info.param); });

// --- Paper Section III-B worked examples -------------------------
//
// The paper's example gate computes the complement of
// (a+b).(c+d): our OAI22. In our schematic the P network is the
// series-of-parallel dual: path1 = a,b (switches 0,1 through node
// 2), path2 = c,d (switches 2,3 through node 3).

TEST(PaperExample, OpenAtTransistor1KillsFirstPullUpPath)
{
    // Open at the drain of "transistor 1" (our P switch 0, input a):
    // Z can only be pulled up through the c,d path, i.e., when
    // c = 0 and d = 0 (Z_P = !c.!d in conduction terms).
    Defect d{DefectKind::Open, true, 0, 0, 0};
    ReconstructedGate rec = reconstruct(GateKind::Oai22, {{d}});

    // a=b=0, c=1 (second path off): clean gate outputs 1 through
    // the a,b path; the faulty gate floats (Z_P = Z_N = 0) -> MEM.
    uint32_t in = 0b0100; // a=0 b=0 c=1 d=0
    EXPECT_EQ(GateFunction::fromGateKind(GateKind::Oai22).eval(in),
              LogicValue::One);
    EXPECT_EQ(rec.function.eval(in), LogicValue::Mem);

    // The paper's specific case: a=b=0, c=d=1 -> Z_P = Z_N = 0,
    // a memory state.
    EXPECT_EQ(rec.function.eval(0b1100), LogicValue::Mem);

    // c=d=0 still pulls up normally.
    EXPECT_EQ(rec.function.eval(0b0000), LogicValue::One);
    EXPECT_TRUE(rec.function.hasMem());
}

TEST(PaperExample, ShortOnParallelPathTransistorIsLogicallyMasked)
{
    // Source-drain short of "transistor 2" (our P switch 2, input
    // c): Z_P becomes !a.!b + !d. The new conduction cases all have
    // Z_N = 1, where the ground path dominates, so the gate's logic
    // function is unchanged -- exactly why the paper warns that
    // fault behaviour must be derived, not assumed.
    Defect d{DefectKind::ShortSD, true, 2, 0, 0};
    ReconstructedGate rec = reconstruct(GateKind::Oai22, {{d}});
    EXPECT_TRUE(rec.function.matchesKind(GateKind::Oai22));
}

TEST(PaperExample, BridgeBetweenInternalNodesJoinsPaths)
{
    // Bridge between the internal nodes of the two P branches
    // (paper: drains of transistors 1 and 2). Conduction becomes
    // (!a + !c).(!b + !d): pull-up paths can mix a with d and c
    // with b.
    Defect d{DefectKind::Bridge, true, 0, 2, 3};
    ReconstructedGate rec = reconstruct(GateKind::Oai22, {{d}});
    for (uint32_t in = 0; in < 16; ++in) {
        bool a = in & 1, b = in & 2, c = in & 4, dd = in & 8;
        bool zp = (!a || !c) && (!b || !dd);
        bool zn = (a || b) && (c || dd);
        LogicValue expect = zn ? LogicValue::Zero
            : (zp ? LogicValue::One : LogicValue::Mem);
        EXPECT_EQ(rec.function.eval(in), expect) << "in=" << in;
    }
}

TEST(PaperExample, BridgeOutToInternalChangesNandFunction)
{
    // NAND2 N network: out -a- n2 -b- Vss. Bridging out to n2
    // bypasses the a transistor: Z_N = b, so the gate degenerates
    // to NOT(b) behaviour wherever b pulls down.
    Defect d{DefectKind::Bridge, false, 0, 1, 2};
    ReconstructedGate rec = reconstruct(GateKind::Nand2, {{d}});
    // a=0, b=1: clean NAND = 1, faulty pulls down through b -> 0.
    EXPECT_EQ(rec.function.eval(0b10), LogicValue::Zero);
    // a=1, b=1 still 0; a=*, b=0 still 1 (P network intact).
    EXPECT_EQ(rec.function.eval(0b11), LogicValue::Zero);
    EXPECT_EQ(rec.function.eval(0b00), LogicValue::One);
    EXPECT_EQ(rec.function.eval(0b01), LogicValue::One);
}

TEST(Reconstruct, ShortsOnBothNetworksMakeConstantZero)
{
    // NOT with both transistors shorted: Z_P = Z_N = 1 always; the
    // ground path dominates (B-block row Z_N=1 -> 0).
    std::vector<Defect> defects = {
        {DefectKind::ShortSD, true, 0, 0, 0},
        {DefectKind::ShortSD, false, 0, 0, 0},
    };
    ReconstructedGate rec = reconstruct(GateKind::Not, defects);
    EXPECT_EQ(rec.function.eval(0), LogicValue::Zero);
    EXPECT_EQ(rec.function.eval(1), LogicValue::Zero);
}

TEST(Reconstruct, OpensOnBothNetworksMakeFloatingOutput)
{
    std::vector<Defect> defects = {
        {DefectKind::Open, true, 0, 0, 0},
        {DefectKind::Open, false, 0, 0, 0},
    };
    ReconstructedGate rec = reconstruct(GateKind::Not, defects);
    EXPECT_EQ(rec.function.eval(0), LogicValue::Mem);
    EXPECT_EQ(rec.function.eval(1), LogicValue::Mem);
}

TEST(Reconstruct, DelayDefectFlagsGate)
{
    Defect d{DefectKind::Delay, false, 0, 0, 0};
    ReconstructedGate rec = reconstruct(GateKind::Nand2, {{d}});
    EXPECT_TRUE(rec.delayed);
    EXPECT_TRUE(rec.function.matchesKind(GateKind::Nand2));
}

TEST(Reconstruct, StuckOffNmosInNandSeriesChain)
{
    // Open on the b transistor of NAND2's series chain: the gate
    // can never pull down; output is 1 when any PMOS conducts and
    // MEM when a=b=1.
    Defect d{DefectKind::Open, false, 1, 0, 0};
    ReconstructedGate rec = reconstruct(GateKind::Nand2, {{d}});
    EXPECT_EQ(rec.function.eval(0b00), LogicValue::One);
    EXPECT_EQ(rec.function.eval(0b01), LogicValue::One);
    EXPECT_EQ(rec.function.eval(0b10), LogicValue::One);
    EXPECT_EQ(rec.function.eval(0b11), LogicValue::Mem);
}

TEST(Reconstruct, ShortedNmosTurnsNandIntoInverterOfOther)
{
    // Short on the a transistor of NAND2's series chain: Z_N = b,
    // so out = !b regardless of a (P network change is masked).
    Defect d{DefectKind::ShortSD, false, 0, 0, 0};
    ReconstructedGate rec = reconstruct(GateKind::Nand2, {{d}});
    for (uint32_t in = 0; in < 4; ++in) {
        bool b = in & 2;
        LogicValue expect = b ? LogicValue::Zero : LogicValue::One;
        EXPECT_EQ(rec.function.eval(in), expect) << "in=" << in;
    }
}

TEST(RandomDefect, DrawsAreValid)
{
    Rng rng(99);
    for (GateKind kind : realKinds) {
        const GateSchematic &s = schematicFor(kind);
        for (int i = 0; i < 500; ++i) {
            Defect d = randomDefect(kind, rng);
            switch (d.kind) {
              case DefectKind::Open:
              case DefectKind::ShortSD: {
                const auto &net = d.pNetwork ? s.p : s.n;
                EXPECT_LT(d.switchIndex, net.switches.size());
                break;
              }
              case DefectKind::Bridge: {
                const auto &net = d.pNetwork ? s.p : s.n;
                EXPECT_LT(d.nodeA, net.numNodes);
                EXPECT_LT(d.nodeB, net.numNodes);
                EXPECT_NE(d.nodeA, d.nodeB);
                break;
              }
              case DefectKind::Delay:
                break;
              default:
                FAIL() << "bad defect kind";
            }
            // Reconstruction never fails on a random defect.
            reconstruct(kind, {{d}});
        }
    }
}

TEST(RandomDefect, MixIsRespectedRoughly)
{
    Rng rng(5);
    DefectMix mix;
    mix.open = 1.0;
    mix.shortSd = mix.bridge = mix.delay = 0.0;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(randomDefect(GateKind::Nand2, rng, mix).kind,
                  DefectKind::Open);
}

TEST(AllSingleSwitchDefects, CountIsTwicePerTransistor)
{
    for (GateKind kind : realKinds) {
        auto all = allSingleSwitchDefects(kind);
        EXPECT_EQ(all.size(),
                  2 * static_cast<size_t>(gateTransistorCount(kind)))
            << gateName(kind);
    }
}

TEST(Defect, DescribeIsInformative)
{
    Defect d{DefectKind::Open, true, 3, 0, 0};
    EXPECT_EQ(d.describe(), "open(P,t3)");
    Defect b{DefectKind::Bridge, false, 0, 1, 2};
    EXPECT_EQ(b.describe(), "bridge(N,n1-n2)");
    Defect dl{DefectKind::Delay, false, 0, 0, 0};
    EXPECT_EQ(dl.describe(), "delay");
}

} // namespace
} // namespace dtann
