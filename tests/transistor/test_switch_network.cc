/**
 * @file
 * Structural validation of the per-gate transistor schematics.
 */

#include <gtest/gtest.h>

#include "transistor/switch_network.hh"

namespace dtann {
namespace {

class SchematicTest : public ::testing::TestWithParam<GateKind>
{
};

TEST_P(SchematicTest, TransistorCountMatchesGateModel)
{
    const GateSchematic &s = schematicFor(GetParam());
    EXPECT_EQ(s.transistorCount(),
              static_cast<size_t>(gateTransistorCount(GetParam())));
}

TEST_P(SchematicTest, NodesAndInputsInRange)
{
    const GateSchematic &s = schematicFor(GetParam());
    int arity = gateArity(GetParam());
    for (const ChannelNetwork *net : {&s.p, &s.n}) {
        EXPECT_GE(net->numNodes, 2);
        for (const Switch &sw : net->switches) {
            EXPECT_LT(sw.nodeA, net->numNodes);
            EXPECT_LT(sw.nodeB, net->numNodes);
            EXPECT_NE(sw.nodeA, sw.nodeB);
            EXPECT_LT(sw.input, arity);
        }
    }
}

TEST_P(SchematicTest, PolarityByNetwork)
{
    const GateSchematic &s = schematicFor(GetParam());
    for (const Switch &sw : s.p.switches)
        EXPECT_TRUE(sw.pmos);
    for (const Switch &sw : s.n.switches)
        EXPECT_FALSE(sw.pmos);
}

TEST_P(SchematicTest, EveryInputControlsBothNetworks)
{
    // Fully complementary CMOS: each input drives at least one PMOS
    // and one NMOS.
    const GateSchematic &s = schematicFor(GetParam());
    int arity = gateArity(GetParam());
    for (int in = 0; in < arity; ++in) {
        bool in_p = false, in_n = false;
        for (const Switch &sw : s.p.switches)
            in_p |= sw.input == in;
        for (const Switch &sw : s.n.switches)
            in_n |= sw.input == in;
        EXPECT_TRUE(in_p) << "input " << in << " missing from P";
        EXPECT_TRUE(in_n) << "input " << in << " missing from N";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllGateKinds, SchematicTest,
    ::testing::Values(GateKind::Not, GateKind::Nand2, GateKind::Nand3,
                      GateKind::Nor2, GateKind::Nor3, GateKind::Aoi21,
                      GateKind::Aoi22, GateKind::Oai21, GateKind::Oai22,
                      GateKind::CarryN, GateKind::MirrorSumN),
    [](const auto &info) { return gateName(info.param); });

TEST(Schematic, ConstantsHaveNoSchematic)
{
    EXPECT_FALSE(hasSchematic(GateKind::Const0));
    EXPECT_FALSE(hasSchematic(GateKind::Const1));
    EXPECT_TRUE(hasSchematic(GateKind::Nand2));
}

TEST(Switch, ConductionPolarity)
{
    Switch n{0, 1, 0, false};
    EXPECT_TRUE(n.conducts(1));
    EXPECT_FALSE(n.conducts(0));
    Switch p{0, 1, 1, true};
    EXPECT_TRUE(p.conducts(0b01)); // input 1 low
    EXPECT_FALSE(p.conducts(0b10));
}

} // namespace
} // namespace dtann
