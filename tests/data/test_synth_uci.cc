/**
 * @file
 * Tests for the synthetic UCI task generators.
 */

#include <gtest/gtest.h>

#include "data/synth_uci.hh"

namespace dtann {
namespace {

TEST(UciTasks, TenTasksWithPaperDimensions)
{
    const auto &tasks = uciTasks();
    ASSERT_EQ(tasks.size(), 10u);
    // Spot-check paper Table II dimensions.
    EXPECT_EQ(uciTask("breast").attributes, 30);
    EXPECT_EQ(uciTask("breast").classes, 2);
    EXPECT_EQ(uciTask("glass").attributes, 9);
    EXPECT_EQ(uciTask("glass").classes, 6);
    EXPECT_EQ(uciTask("iris").attributes, 4);
    EXPECT_EQ(uciTask("iris").classes, 3);
    EXPECT_EQ(uciTask("optdigits").attributes, 64);
    EXPECT_EQ(uciTask("optdigits").classes, 10);
    EXPECT_EQ(uciTask("robot").attributes, 90);
    EXPECT_EQ(uciTask("robot").classes, 5);
    EXPECT_EQ(uciTask("sonar").attributes, 60);
    EXPECT_EQ(uciTask("spam").attributes, 57);
    EXPECT_EQ(uciTask("vehicle").classes, 4);
    EXPECT_EQ(uciTask("wine").attributes, 13);
}

TEST(UciTasks, AllFitTheAccelerator)
{
    // The accelerator is 90-10-10: every benchmark task must fit.
    for (const auto &t : uciTasks()) {
        EXPECT_LE(t.attributes, 90) << t.name;
        EXPECT_LE(t.classes, 10) << t.name;
    }
}

TEST(UciTasks, PaperHyperParametersRecorded)
{
    EXPECT_DOUBLE_EQ(uciTask("ionosphere").learningRate, 0.3);
    EXPECT_EQ(uciTask("robot").epochs, 1600);
    EXPECT_EQ(uciTask("breast").hidden, 14);
}

TEST(SyntheticTask, HasRequestedShape)
{
    Rng rng(1);
    Dataset ds = makeSyntheticTask(uciTask("iris"), rng, 120);
    EXPECT_EQ(ds.size(), 120u);
    EXPECT_EQ(ds.numAttributes, 4);
    EXPECT_EQ(ds.numClasses, 3);
    ds.validate();
}

TEST(SyntheticTask, DefaultSizeMatchesOriginal)
{
    Rng rng(1);
    Dataset ds = makeSyntheticTask(uciTask("wine"), rng);
    EXPECT_EQ(ds.size(), 178u);
}

TEST(SyntheticTask, ValuesInUnitRange)
{
    Rng rng(2);
    Dataset ds = makeSyntheticTask(uciTask("sonar"), rng, 100);
    for (const auto &row : ds.rows)
        for (double v : row) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
}

TEST(SyntheticTask, RoughlyBalancedClasses)
{
    Rng rng(3);
    Dataset ds = makeSyntheticTask(uciTask("glass"), rng, 300);
    std::vector<int> counts(6, 0);
    for (int l : ds.labels)
        ++counts[static_cast<size_t>(l)];
    for (int c : counts)
        EXPECT_EQ(c, 50);
}

TEST(SyntheticTask, DeterministicPerSeed)
{
    Rng a(9), b(9);
    Dataset da = makeSyntheticTask(uciTask("iris"), a, 50);
    Dataset db = makeSyntheticTask(uciTask("iris"), b, 50);
    EXPECT_EQ(da.labels, db.labels);
    EXPECT_EQ(da.rows, db.rows);
}

TEST(SyntheticTask, DifferentSeedsDiffer)
{
    Rng a(9), b(10);
    Dataset da = makeSyntheticTask(uciTask("iris"), a, 50);
    Dataset db = makeSyntheticTask(uciTask("iris"), b, 50);
    EXPECT_NE(da.rows, db.rows);
}

} // namespace
} // namespace dtann
