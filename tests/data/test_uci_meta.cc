/**
 * @file
 * Tests for the UCI attribute census (Fig 2 input data).
 */

#include <gtest/gtest.h>

#include "data/uci_meta.hh"

namespace dtann {
namespace {

TEST(UciCensus, Has135Entries)
{
    EXPECT_EQ(uciCensus().size(), 135u);
}

TEST(UciCensus, AttributesPositive)
{
    for (const auto &e : uciCensus()) {
        EXPECT_GT(e.attributes, 0) << e.name;
        EXPECT_FALSE(e.name.empty());
    }
}

TEST(UciCensus, PaperHeadlineClaimHolds)
{
    // "more than 92% of UCI data have less than 100 attributes"
    EXPECT_GT(censusCumulativeFraction(99), 0.92);
}

TEST(UciCensus, NinetyInputsCoverMostDatasets)
{
    // The design point: a 90-input network captures ~90% of cases.
    EXPECT_GT(censusCumulativeFraction(90), 0.88);
}

TEST(UciCensus, CdfIsMonotone)
{
    double prev = 0.0;
    for (int a : {10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 1000, 10000}) {
        double f = censusCumulativeFraction(a);
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(UciCensus, SomeDatasetsExceedTenThousand)
{
    // The paper's Fig 2 has a ">10000" bucket.
    EXPECT_LT(censusCumulativeFraction(10000), 1.0);
}

TEST(UciCensus, CdfEndpoints)
{
    EXPECT_GT(censusCumulativeFraction(3), 0.0);
    EXPECT_DOUBLE_EQ(censusCumulativeFraction(1000000), 1.0);
}

} // namespace
} // namespace dtann
