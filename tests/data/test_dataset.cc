/**
 * @file
 * Unit tests for dataset utilities.
 */

#include <gtest/gtest.h>

#include "data/dataset.hh"

namespace dtann {
namespace {

Dataset
tinyDataset()
{
    Dataset ds;
    ds.name = "tiny";
    ds.numAttributes = 2;
    ds.numClasses = 2;
    ds.rows = {{0.0, 10.0}, {5.0, 20.0}, {10.0, 30.0}, {2.5, 15.0}};
    ds.labels = {0, 1, 1, 0};
    return ds;
}

TEST(Dataset, ValidatePasses)
{
    tinyDataset().validate();
}

TEST(Dataset, NormalizeMinMaxMapsToUnitRange)
{
    Dataset ds = tinyDataset();
    normalizeMinMax(ds);
    for (const auto &row : ds.rows)
        for (double v : row) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    EXPECT_DOUBLE_EQ(ds.rows[0][0], 0.0);
    EXPECT_DOUBLE_EQ(ds.rows[2][0], 1.0);
    EXPECT_DOUBLE_EQ(ds.rows[1][1], 0.5);
}

TEST(Dataset, NormalizeConstantAttributeToZero)
{
    Dataset ds = tinyDataset();
    for (auto &row : ds.rows)
        row[0] = 7.0;
    normalizeMinMax(ds);
    for (const auto &row : ds.rows)
        EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(Dataset, ShuffleKeepsPairs)
{
    Dataset ds = tinyDataset();
    // Tag rows by their label parity so pairing is checkable.
    Rng rng(4);
    shuffleDataset(ds, rng);
    for (size_t i = 0; i < ds.size(); ++i) {
        // Label 0 rows have first attribute in {0.0, 2.5}.
        bool low = ds.rows[i][0] == 0.0 || ds.rows[i][0] == 2.5;
        EXPECT_EQ(ds.labels[i] == 0, low);
    }
}

TEST(Dataset, KFoldCoversAllIndicesOnce)
{
    auto folds = kFoldIndices(10, 3);
    ASSERT_EQ(folds.size(), 3u);
    std::vector<int> seen(10, 0);
    for (const auto &f : folds)
        for (size_t i : f)
            ++seen[i];
    for (int c : seen)
        EXPECT_EQ(c, 1);
}

TEST(Dataset, KFoldBalancedSizes)
{
    auto folds = kFoldIndices(10, 3);
    for (const auto &f : folds) {
        EXPECT_GE(f.size(), 3u);
        EXPECT_LE(f.size(), 4u);
    }
}

TEST(Dataset, SubsetSelectsRows)
{
    Dataset ds = tinyDataset();
    Dataset s = subset(ds, {1, 3});
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.labels[0], 1);
    EXPECT_EQ(s.labels[1], 0);
    EXPECT_DOUBLE_EQ(s.rows[0][0], 5.0);
}

TEST(Dataset, ComplementSubsetExcludesFold)
{
    Dataset ds = tinyDataset();
    auto folds = kFoldIndices(ds.size(), 2);
    Dataset train = complementSubset(ds, folds, 0);
    EXPECT_EQ(train.size(), ds.size() - folds[0].size());
}

} // namespace
} // namespace dtann
