/**
 * @file
 * Tests for CSV dataset I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "data/csv.hh"

namespace dtann {
namespace {

TEST(Csv, LoadBasic)
{
    std::istringstream in("# comment\n"
                          "0.5,1.0,0\n"
                          "0.25,2.0,1\n"
                          "\n"
                          "0.75,3.0,1\n");
    Dataset ds = loadCsv(in, "test");
    EXPECT_EQ(ds.size(), 3u);
    EXPECT_EQ(ds.numAttributes, 2);
    EXPECT_EQ(ds.numClasses, 2);
    EXPECT_DOUBLE_EQ(ds.rows[1][1], 2.0);
    EXPECT_EQ(ds.labels[2], 1);
}

TEST(Csv, HandlesWindowsLineEndings)
{
    std::istringstream in("1.0,0\r\n2.0,1\r\n");
    Dataset ds = loadCsv(in, "crlf");
    EXPECT_EQ(ds.size(), 2u);
    EXPECT_EQ(ds.numAttributes, 1);
}

TEST(Csv, RoundTrip)
{
    Dataset ds;
    ds.name = "rt";
    ds.numAttributes = 3;
    ds.numClasses = 2;
    ds.rows = {{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}};
    ds.labels = {0, 1};

    std::ostringstream out;
    saveCsv(out, ds);
    std::istringstream in(out.str());
    Dataset back = loadCsv(in, "rt");
    EXPECT_EQ(back.size(), ds.size());
    EXPECT_EQ(back.numAttributes, ds.numAttributes);
    EXPECT_EQ(back.labels, ds.labels);
    for (size_t i = 0; i < ds.size(); ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(back.rows[i][j], ds.rows[i][j], 1e-9);
}

TEST(Csv, LoadCsvFileFromDisk)
{
    std::string path = ::testing::TempDir() + "dtann_csv_test.csv";
    {
        std::ofstream out(path);
        out << "0.1,0.2,0\n0.3,0.4,1\n";
    }
    Dataset ds = loadCsvFile(path);
    EXPECT_EQ(ds.size(), 2u);
    EXPECT_EQ(ds.numAttributes, 2);
    std::remove(path.c_str());
}

TEST(CsvDeath, LoadCsvFileMissingPathIsFatal)
{
    EXPECT_EXIT(loadCsvFile("/nonexistent/definitely_missing.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

using CsvDeath = ::testing::Test;

TEST(CsvDeath, RejectsNonNumericCell)
{
    std::istringstream in("1.0,abc,0\n");
    EXPECT_EXIT(loadCsv(in, "bad"), ::testing::ExitedWithCode(1),
                "non-numeric");
}

TEST(CsvDeath, RejectsInconsistentArity)
{
    std::istringstream in("1.0,2.0,0\n1.0,1\n");
    EXPECT_EXIT(loadCsv(in, "bad"), ::testing::ExitedWithCode(1),
                "inconsistent");
}

TEST(CsvDeath, RejectsEmptyInput)
{
    std::istringstream in("# nothing\n");
    EXPECT_EXIT(loadCsv(in, "bad"), ::testing::ExitedWithCode(1), "empty");
}

TEST(CsvDeath, RejectsSingleClass)
{
    std::istringstream in("1.0,0\n2.0,0\n");
    EXPECT_EXIT(loadCsv(in, "bad"), ::testing::ExitedWithCode(1),
                "2 classes");
}

} // namespace
} // namespace dtann
