/**
 * @file
 * Tests for deep (multi-hidden-layer) networks and their trainer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ann/deep.hh"
#include "ann/mlp.hh"
#include "ann/sigmoid.hh"

namespace dtann {
namespace {

Dataset
xorDataset()
{
    Dataset ds;
    ds.name = "xor";
    ds.numAttributes = 2;
    ds.numClasses = 2;
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        double x = rng.nextDouble(), y = rng.nextDouble();
        ds.rows.push_back({x, y});
        ds.labels.push_back(((x > 0.5) != (y > 0.5)) ? 1 : 0);
    }
    return ds;
}

TEST(DeepTopology, Accessors)
{
    DeepTopology t{{4, 8, 6, 3}};
    EXPECT_EQ(t.inputs(), 4);
    EXPECT_EQ(t.outputs(), 3);
    EXPECT_EQ(t.stages(), 3u);
}

TEST(DeepWeights, CountAndIndexing)
{
    DeepTopology t{{4, 8, 6, 3}};
    DeepWeights w(t);
    EXPECT_EQ(w.count(), 8u * 5u + 6u * 9u + 3u * 7u);
    w.at(0, 7, 4) = 1.5; // bias of hidden-1 unit 7
    w.at(2, 2, 6) = -2.0;
    EXPECT_DOUBLE_EQ(w.at(0, 7, 4), 1.5);
    EXPECT_DOUBLE_EQ(w.at(2, 2, 6), -2.0);
    EXPECT_DOUBLE_EQ(w.at(1, 0, 0), 0.0);
}

TEST(FloatDeepMlp, SingleStageMatchesManual)
{
    DeepTopology t{{2, 2, 1}};
    DeepWeights w(t);
    w.at(0, 0, 0) = 1.0;
    w.at(0, 0, 1) = -1.0;
    w.at(0, 0, 2) = 0.5;
    w.at(0, 1, 0) = 2.0;
    w.at(0, 1, 2) = -1.0;
    w.at(1, 0, 0) = 1.5;
    w.at(1, 0, 1) = -0.5;
    w.at(1, 0, 2) = 0.25;
    FloatDeepMlp m(t);
    m.setWeights(w);
    auto acts = m.forwardAll(std::vector<double>{0.3, 0.7});
    double h0 = logistic(0.3 - 0.7 + 0.5);
    double h1 = logistic(0.6 - 1.0);
    double o = logistic(1.5 * h0 - 0.5 * h1 + 0.25);
    ASSERT_EQ(acts.size(), 2u);
    EXPECT_NEAR(acts[0][0], h0, 1e-12);
    EXPECT_NEAR(acts[0][1], h1, 1e-12);
    EXPECT_NEAR(acts[1][0], o, 1e-12);
}

TEST(DeepTrainer, TwoHiddenLayersLearnXor)
{
    // Deep sigmoid stacks are plateau-prone from tiny inits (the
    // classic pre-2006 training difficulty the paper's Deep
    // Networks reference is about); a slightly wider init escapes
    // it.
    Dataset ds = xorDataset();
    DeepTopology t{{2, 6, 4, 2}};
    FloatDeepMlp model(t);
    Rng rng(3);
    DeepWeights init(t);
    init.initRandom(rng, 1.5);
    DeepTrainer trainer(400, 0.5, 0.5);
    trainer.train(model, ds, rng, &init);
    EXPECT_GT(DeepTrainer::accuracy(model, ds), 0.9);
}

TEST(DeepTrainer, DeeperStackStillTrains)
{
    Dataset ds = xorDataset();
    DeepTopology t{{2, 8, 6, 4, 2}};
    FloatDeepMlp model(t);
    Rng rng(9);
    DeepWeights init(t);
    init.initRandom(rng, 1.5);
    DeepTrainer trainer(600, 0.4, 0.5);
    trainer.train(model, ds, rng, &init);
    EXPECT_GT(DeepTrainer::accuracy(model, ds), 0.85);
}

TEST(DeepTrainer, WarmStartKeepsAccuracy)
{
    Dataset ds = xorDataset();
    DeepTopology t{{2, 6, 4, 2}};
    FloatDeepMlp model(t);
    Rng rng(5);
    DeepWeights w = DeepTrainer(400, 0.5, 0.5).train(model, ds, rng);
    double before = DeepTrainer::accuracy(model, ds);
    EXPECT_GT(before, 0.9);
    DeepTrainer(10, 0.5, 0.5).train(model, ds, rng, &w);
    EXPECT_GT(DeepTrainer::accuracy(model, ds), before - 0.1);
}

TEST(DeepTrainer, MatchesTwoLayerSemantics)
{
    // A {in, h, out} deep topology is an ordinary 2-layer MLP;
    // its forward must match FloatMlp exactly for equal weights.
    DeepTopology t{{3, 4, 2}};
    DeepWeights dw(t);
    Rng rng(11);
    dw.initRandom(rng, 1.0);
    FloatDeepMlp deep(t);
    deep.setWeights(dw);

    // Mirror the weights into the 2-layer structures.
    MlpTopology topo{3, 4, 2};
    MlpWeights w(topo);
    for (int j = 0; j < 4; ++j)
        for (int i = 0; i <= 3; ++i)
            w.hid(j, i) = dw.at(0, j, i);
    for (int k = 0; k < 2; ++k)
        for (int j = 0; j <= 4; ++j)
            w.out(k, j) = dw.at(1, k, j);
    FloatMlp flat(topo);
    flat.setWeights(w);

    std::vector<double> in{0.2, 0.5, 0.9};
    auto deep_acts = deep.forwardAll(in);
    Activations flat_acts = flat.forward(in);
    for (size_t j = 0; j < 4; ++j)
        EXPECT_NEAR(deep_acts[0][j], flat_acts.hidden[j], 1e-12);
    for (size_t k = 0; k < 2; ++k)
        EXPECT_NEAR(deep_acts[1][k], flat_acts.output[k], 1e-12);
}

} // namespace
} // namespace dtann
