/**
 * @file
 * Tests for deep (multi-hidden-layer) networks on the unified
 * ForwardModel hierarchy and the staged Trainer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ann/deep.hh"
#include "ann/mlp.hh"
#include "ann/sigmoid.hh"
#include "ann/trainer.hh"

namespace dtann {
namespace {

Dataset
xorDataset()
{
    Dataset ds;
    ds.name = "xor";
    ds.numAttributes = 2;
    ds.numClasses = 2;
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        double x = rng.nextDouble(), y = rng.nextDouble();
        ds.rows.push_back({x, y});
        ds.labels.push_back(((x > 0.5) != (y > 0.5)) ? 1 : 0);
    }
    return ds;
}

TEST(DeepTopology, Accessors)
{
    DeepTopology t{{4, 8, 6, 3}};
    EXPECT_EQ(t.inputs(), 4);
    EXPECT_EQ(t.outputs(), 3);
    EXPECT_EQ(t.stages(), 3u);
}

TEST(DeepWeights, CountAndIndexing)
{
    DeepTopology t{{4, 8, 6, 3}};
    DeepWeights w(t);
    EXPECT_EQ(w.count(), 8u * 5u + 6u * 9u + 3u * 7u);
    w.at(0, 7, 4) = 1.5; // bias of hidden-1 unit 7
    w.at(2, 2, 6) = -2.0;
    EXPECT_DOUBLE_EQ(w.at(0, 7, 4), 1.5);
    EXPECT_DOUBLE_EQ(w.at(2, 2, 6), -2.0);
    EXPECT_DOUBLE_EQ(w.at(1, 0, 0), 0.0);
}

TEST(FloatDeepMlp, SingleStageMatchesManual)
{
    DeepTopology t{{2, 2, 1}};
    DeepWeights w(t);
    w.at(0, 0, 0) = 1.0;
    w.at(0, 0, 1) = -1.0;
    w.at(0, 0, 2) = 0.5;
    w.at(0, 1, 0) = 2.0;
    w.at(0, 1, 2) = -1.0;
    w.at(1, 0, 0) = 1.5;
    w.at(1, 0, 1) = -0.5;
    w.at(1, 0, 2) = 0.25;
    FloatDeepMlp m(t);
    m.setLayerWeights(w);
    Activations act = m.forward(std::vector<double>{0.3, 0.7});
    double h0 = logistic(0.3 - 0.7 + 0.5);
    double h1 = logistic(0.6 - 1.0);
    double o = logistic(1.5 * h0 - 0.5 * h1 + 0.25);
    ASSERT_EQ(act.layers.size(), 2u);
    EXPECT_NEAR(act.hidden()[0], h0, 1e-12);
    EXPECT_NEAR(act.hidden()[1], h1, 1e-12);
    EXPECT_NEAR(act.output()[0], o, 1e-12);
}

TEST(FloatDeepMlp, BatchMatchesScalar)
{
    DeepTopology t{{3, 5, 4, 2}};
    FloatDeepMlp m(t);
    DeepWeights w(t);
    Rng rng(21);
    w.initRandom(rng, 1.0);
    m.setLayerWeights(w);

    std::vector<std::vector<double>> rows;
    for (int r = 0; r < 17; ++r) {
        std::vector<double> in(3);
        for (double &v : in)
            v = rng.nextDouble();
        rows.push_back(in);
    }
    std::vector<Activations> batch = m.forwardBatch(rows);
    ASSERT_EQ(batch.size(), rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
        Activations ref = m.forward(rows[r]);
        EXPECT_EQ(batch[r].layers, ref.layers) << "row " << r;
    }
}

TEST(DeepTrainer, TwoHiddenLayersLearnXor)
{
    // Deep sigmoid stacks are plateau-prone from tiny inits (the
    // classic pre-2006 training difficulty the paper's Deep
    // Networks reference is about); a slightly wider init escapes
    // it.
    Dataset ds = xorDataset();
    DeepTopology t{{2, 6, 4, 2}};
    FloatDeepMlp model(t);
    Rng rng(3);
    DeepWeights init(t);
    init.initRandom(rng, 1.5);
    Trainer trainer({4, 400, 0.5, 0.5});
    trainer.trainLayers(model, ds, rng, &init);
    EXPECT_GT(evalAccuracy(model, ds), 0.9);
}

TEST(DeepTrainer, DeeperStackStillTrains)
{
    Dataset ds = xorDataset();
    DeepTopology t{{2, 8, 6, 4, 2}};
    FloatDeepMlp model(t);
    Rng rng(9);
    DeepWeights init(t);
    init.initRandom(rng, 1.5);
    Trainer trainer({4, 600, 0.4, 0.5});
    trainer.trainLayers(model, ds, rng, &init);
    EXPECT_GT(evalAccuracy(model, ds), 0.85);
}

TEST(DeepTrainer, WarmStartKeepsAccuracy)
{
    Dataset ds = xorDataset();
    DeepTopology t{{2, 6, 4, 2}};
    FloatDeepMlp model(t);
    Rng rng(5);
    DeepWeights w =
        Trainer({4, 400, 0.5, 0.5}).trainLayers(model, ds, rng);
    double before = evalAccuracy(model, ds);
    EXPECT_GT(before, 0.9);
    Trainer({4, 10, 0.5, 0.5}).trainLayers(model, ds, rng, &w);
    EXPECT_GT(evalAccuracy(model, ds), before - 0.1);
}

TEST(DeepTrainer, MatchesTwoLayerSemantics)
{
    // A {in, h, out} deep topology is an ordinary 2-layer MLP;
    // its forward must match FloatMlp exactly for equal weights.
    DeepTopology t{{3, 4, 2}};
    DeepWeights dw(t);
    Rng rng(11);
    dw.initRandom(rng, 1.0);
    FloatDeepMlp deep(t);
    deep.setLayerWeights(dw);

    // Mirror the weights into the 2-layer structures.
    MlpTopology topo{3, 4, 2};
    MlpWeights w(topo);
    for (int j = 0; j < 4; ++j)
        for (int i = 0; i <= 3; ++i)
            w.hid(j, i) = dw.at(0, j, i);
    for (int k = 0; k < 2; ++k)
        for (int j = 0; j <= 4; ++j)
            w.out(k, j) = dw.at(1, k, j);
    FloatMlp flat(topo);
    flat.setWeights(w);

    std::vector<double> in{0.2, 0.5, 0.9};
    Activations deep_acts = deep.forward(in);
    Activations flat_acts = flat.forward(in);
    for (size_t j = 0; j < 4; ++j)
        EXPECT_NEAR(deep_acts.hidden()[j], flat_acts.hidden()[j],
                    1e-12);
    for (size_t k = 0; k < 2; ++k)
        EXPECT_NEAR(deep_acts.output()[k], flat_acts.output()[k],
                    1e-12);
}

TEST(DeepTrainer, StagedTrainerMatchesTwoLayerWrapper)
{
    // train() (2-layer MlpWeights API) must be bit-identical to
    // trainLayers() on the equivalent layer stack: same RNG draw
    // order, same FP expression shapes.
    Dataset ds = xorDataset();
    MlpTopology topo{2, 6, 2};
    Hyper h{6, 40, 0.5, 0.5};

    FloatMlp flat(topo);
    Rng r1(31);
    MlpWeights flat_w = Trainer(h).train(flat, ds, r1);

    FloatDeepMlp deep(toLayerTopology(topo));
    Rng r2(31);
    DeepWeights deep_w = Trainer(h).trainLayers(deep, ds, r2);

    MlpWeights collapsed = toMlpWeights(deep_w);
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i)
            EXPECT_EQ(flat_w.hid(j, i), collapsed.hid(j, i));
    for (int k = 0; k < topo.outputs; ++k)
        for (int j = 0; j <= topo.hidden; ++j)
            EXPECT_EQ(flat_w.out(k, j), collapsed.out(k, j));
}

} // namespace
} // namespace dtann
