/**
 * @file
 * Bit-level tests of the fixed-point forward model.
 */

#include <gtest/gtest.h>

#include "ann/fixed_mlp.hh"
#include "ann/sigmoid.hh"

namespace dtann {
namespace {

TEST(FixedMlp, QuantizesWeights)
{
    MlpTopology topo{2, 2, 1};
    MlpWeights w(topo);
    w.hid(0, 0) = 0.123456; // quantizes to nearest 1/1024
    FixedMlp m(topo);
    m.setWeights(w);
    EXPECT_EQ(m.hidWeight(0, 0).raw(),
              Fix16::fromDouble(0.123456).raw());
}

TEST(FixedMlp, ForwardFixManualCheck)
{
    MlpTopology topo{1, 1, 1};
    MlpWeights w(topo);
    w.hid(0, 0) = 2.0;
    w.hid(0, 1) = 0.0;
    w.out(0, 0) = 1.0;
    w.out(0, 1) = 0.0;
    FixedMlp m(topo);
    m.setWeights(w);

    std::vector<Fix16> in{Fix16::fromDouble(0.5)};
    auto out = m.forwardFix(in);
    ASSERT_EQ(out.size(), 1u);
    // h = pwl(2 * 0.5) = pwl(1.0); o = pwl(h).
    Fix16 h = logisticPwlFix(Fix16::fromDouble(1.0));
    Fix16 expect = logisticPwlFix(h);
    EXPECT_EQ(out[0].raw(), expect.raw());
}

TEST(FixedMlp, SaturationBeforeActivation)
{
    // Large weights push the accumulator beyond Q6.10: the
    // activation input saturates, the output pins near 1.
    MlpTopology topo{4, 1, 1};
    MlpWeights w(topo);
    for (int i = 0; i < 4; ++i)
        w.hid(0, i) = 31.0;
    w.out(0, 0) = 31.0;
    FixedMlp m(topo);
    m.setWeights(w);
    std::vector<double> in{1.0, 1.0, 1.0, 1.0};
    Activations act = m.forward(in);
    EXPECT_NEAR(act.hidden()[0], 1.0, 0.01);
    EXPECT_NEAR(act.output()[0], 1.0, 0.01);
}

TEST(FixedMlp, BiasContributes)
{
    MlpTopology topo{1, 1, 1};
    MlpWeights w(topo);
    w.hid(0, 0) = 0.0;
    w.hid(0, 1) = 3.0; // bias only
    w.out(0, 0) = 0.0;
    w.out(0, 1) = -3.0;
    FixedMlp m(topo);
    m.setWeights(w);
    Activations act = m.forward(std::vector<double>{0.0});
    EXPECT_NEAR(act.hidden()[0], logistic(3.0), 0.03);
    EXPECT_NEAR(act.output()[0], logistic(-3.0), 0.03);
}

TEST(FixedMlp, AgreesWithFloatWithinQuantization)
{
    MlpTopology topo{6, 4, 3};
    MlpWeights w(topo);
    Rng rng(31);
    w.initRandom(rng, 1.0);
    FixedMlp qm(topo);
    FloatMlp fm(topo);
    qm.setWeights(w);
    fm.setWeights(w);
    for (int t = 0; t < 50; ++t) {
        std::vector<double> in(6);
        for (double &v : in)
            v = rng.nextDouble();
        Activations qa = qm.forward(in);
        Activations fa = fm.forward(in);
        for (size_t k = 0; k < qa.output().size(); ++k)
            EXPECT_NEAR(qa.output()[k], fa.output()[k], 0.05);
    }
}

TEST(FixedMlp, DeterministicForward)
{
    MlpTopology topo{3, 2, 2};
    MlpWeights w(topo);
    Rng rng(5);
    w.initRandom(rng, 1.0);
    FixedMlp m(topo);
    m.setWeights(w);
    std::vector<double> in{0.2, 0.8, 0.5};
    Activations a = m.forward(in);
    Activations b = m.forward(in);
    EXPECT_EQ(a.output(), b.output());
    EXPECT_EQ(a.hidden(), b.hidden());
}

} // namespace
} // namespace dtann
