/**
 * @file
 * Tests for MLP weight storage and the float reference model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ann/mlp.hh"
#include "ann/sigmoid.hh"

namespace dtann {
namespace {

TEST(MlpWeights, CountIncludesBiases)
{
    MlpWeights w({4, 3, 2});
    EXPECT_EQ(w.count(), 3u * 5u + 2u * 4u);
}

TEST(MlpWeights, IndependentCells)
{
    MlpWeights w({2, 2, 2});
    w.hid(0, 0) = 1.0;
    w.hid(1, 2) = 2.0; // bias of hidden neuron 1
    w.out(1, 0) = 3.0;
    EXPECT_DOUBLE_EQ(w.hid(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(w.hid(1, 2), 2.0);
    EXPECT_DOUBLE_EQ(w.out(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(w.hid(0, 1), 0.0);
}

TEST(MlpWeights, InitRandomWithinRange)
{
    MlpWeights w({10, 5, 3});
    Rng rng(1);
    w.initRandom(rng, 0.5);
    bool nonzero = false;
    for (int j = 0; j < 5; ++j)
        for (int i = 0; i <= 10; ++i) {
            EXPECT_LE(std::abs(w.hid(j, i)), 0.5);
            nonzero |= w.hid(j, i) != 0.0;
        }
    EXPECT_TRUE(nonzero);
}

TEST(FloatMlp, ForwardMatchesManualComputation)
{
    MlpTopology topo{2, 2, 1};
    MlpWeights w(topo);
    w.hid(0, 0) = 1.0;
    w.hid(0, 1) = -1.0;
    w.hid(0, 2) = 0.5;  // bias
    w.hid(1, 0) = 2.0;
    w.hid(1, 1) = 0.0;
    w.hid(1, 2) = -1.0;
    w.out(0, 0) = 1.5;
    w.out(0, 1) = -0.5;
    w.out(0, 2) = 0.25;

    FloatMlp mlp(topo);
    mlp.setWeights(w);
    double x0 = 0.3, x1 = 0.7;
    Activations act = mlp.forward(std::vector<double>{x0, x1});

    double h0 = logistic(1.0 * x0 - 1.0 * x1 + 0.5);
    double h1 = logistic(2.0 * x0 - 1.0);
    double o = logistic(1.5 * h0 - 0.5 * h1 + 0.25);
    ASSERT_EQ(act.hidden().size(), 2u);
    EXPECT_NEAR(act.hidden()[0], h0, 1e-12);
    EXPECT_NEAR(act.hidden()[1], h1, 1e-12);
    ASSERT_EQ(act.output().size(), 1u);
    EXPECT_NEAR(act.output()[0], o, 1e-12);
}

TEST(FloatMlp, OutputsBoundedBySigmoid)
{
    MlpTopology topo{5, 4, 3};
    FloatMlp mlp(topo);
    MlpWeights w(topo);
    Rng rng(2);
    w.initRandom(rng, 5.0);
    mlp.setWeights(w);
    std::vector<double> in{0.1, 0.9, 0.5, 0.0, 1.0};
    Activations act = mlp.forward(in);
    for (double y : act.output()) {
        EXPECT_GT(y, 0.0);
        EXPECT_LT(y, 1.0);
    }
}

TEST(FloatMlp, ZeroWeightsGiveHalfOutputs)
{
    MlpTopology topo{3, 2, 2};
    FloatMlp mlp(topo);
    mlp.setWeights(MlpWeights(topo));
    Activations act = mlp.forward(std::vector<double>{0.2, 0.4, 0.6});
    for (double y : act.output())
        EXPECT_DOUBLE_EQ(y, 0.5);
}

} // namespace
} // namespace dtann
