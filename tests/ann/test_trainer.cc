/**
 * @file
 * Training, cross-validation and fixed-vs-float accuracy tests.
 */

#include <gtest/gtest.h>

#include "ann/crossval.hh"
#include "ann/fixed_mlp.hh"
#include "ann/trainer.hh"
#include "data/synth_uci.hh"

namespace dtann {
namespace {

/** XOR-like 2D dataset: the classic non-linearly-separable check. */
Dataset
xorDataset()
{
    Dataset ds;
    ds.name = "xor";
    ds.numAttributes = 2;
    ds.numClasses = 2;
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        double x = rng.nextDouble(), y = rng.nextDouble();
        ds.rows.push_back({x, y});
        ds.labels.push_back(((x > 0.5) != (y > 0.5)) ? 1 : 0);
    }
    return ds;
}

TEST(Trainer, LearnsXor)
{
    Dataset ds = xorDataset();
    MlpTopology topo{2, 6, 2};
    FloatMlp model(topo);
    Trainer trainer({6, 400, 0.5, 0.5});
    Rng rng(3);
    trainer.train(model, ds, rng);
    EXPECT_GT(evalAccuracy(model, ds), 0.95);
}

TEST(Trainer, WarmStartImprovesOverColdShortRun)
{
    Dataset ds = xorDataset();
    MlpTopology topo{2, 6, 2};
    FloatMlp model(topo);
    Rng rng(3);
    // Long run to converge.
    MlpWeights trained =
        Trainer({6, 400, 0.5, 0.5}).train(model, ds, rng);
    // Short retraining from the converged weights keeps accuracy.
    Trainer short_trainer({6, 10, 0.5, 0.5});
    short_trainer.train(model, ds, rng, &trained);
    double warm = evalAccuracy(model, ds);
    EXPECT_GT(warm, 0.9);
}

TEST(Trainer, LearnsSyntheticIris)
{
    Rng gen(11);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 150);
    MlpTopology topo{4, 8, 3};
    FloatMlp model(topo);
    Trainer trainer({8, 100, 0.2, 0.1});
    Rng rng(5);
    trainer.train(model, ds, rng);
    EXPECT_GT(evalAccuracy(model, ds), 0.85);
}

TEST(Trainer, AccuracyOfUntrainedNetIsChanceLike)
{
    Rng gen(11);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 150);
    MlpTopology topo{4, 8, 3};
    FloatMlp model(topo);
    MlpWeights w(topo);
    Rng rng(5);
    w.initRandom(rng);
    model.setWeights(w);
    EXPECT_LT(evalAccuracy(model, ds), 0.7);
}

TEST(Trainer, MseDecreasesWithTraining)
{
    Dataset ds = xorDataset();
    MlpTopology topo{2, 6, 2};
    FloatMlp model(topo);
    Rng rng(3);
    MlpWeights w(topo);
    w.initRandom(rng);
    model.setWeights(w);
    double before = evalMse(model, ds);
    Trainer({6, 200, 0.5, 0.5}).train(model, ds, rng, &w);
    double after = evalMse(model, ds);
    EXPECT_LT(after, before);
}

TEST(Trainer, PruneMaskFreezesSynapsesToZero)
{
    // Fault-aware pruning support: masked synapses must stay exactly
    // zero through init, every update, and the returned weights —
    // the trainer's shadow state may never diverge from a hardware
    // forward path that zeroed those connections.
    Dataset ds = xorDataset();
    MlpTopology topo{2, 6, 2};
    FloatMlp model(topo);
    Trainer trainer({6, 100, 0.5, 0.5});
    trainer.setPruneMask({{0, 2, 1},
                          {0, 3, 2}, // hidden neuron 3's bias column
                          {1, 0, 4}});
    EXPECT_EQ(trainer.pruneMask().size(), 3u);
    Rng rng(3);
    MlpWeights w = trainer.train(model, ds, rng);
    EXPECT_EQ(w.hid(2, 1), 0.0);
    EXPECT_EQ(w.hid(3, 2), 0.0);
    EXPECT_EQ(w.out(0, 4), 0.0);
    // The rest of the network trains normally around the holes.
    EXPECT_NE(w.hid(2, 0), 0.0);
    EXPECT_GT(evalAccuracy(model, ds), 0.85);
}

TEST(Trainer, PruneMaskZeroesWarmStartWeights)
{
    // A warm start whose pruned synapses carry nonzero values (the
    // usual case: baseline weights trained before the fault) must be
    // cleaned before the first forward pass.
    Dataset ds = xorDataset();
    MlpTopology topo{2, 6, 2};
    FloatMlp model(topo);
    Rng rng(3);
    MlpWeights init = Trainer({6, 60, 0.5, 0.5}).train(model, ds, rng);
    ASSERT_NE(init.out(1, 2), 0.0);

    Trainer pruned({6, 1, 0.5, 0.5});
    pruned.setPruneMask({{1, 1, 2}});
    MlpWeights w = pruned.train(model, ds, rng, &init);
    EXPECT_EQ(w.out(1, 2), 0.0);
}

TEST(Trainer, ArgmaxBasics)
{
    std::vector<double> v{0.1, 0.9, 0.3};
    EXPECT_EQ(argmax(v), 1);
    std::vector<double> first{0.5, 0.5};
    EXPECT_EQ(argmax(first), 0);
}

TEST(FixedMlp, MatchesFloatAccuracyAfterQuantization)
{
    // The paper's claim: the 16-bit Q6.10 design achieves the same
    // accuracy as floating point on these problems.
    Rng gen(13);
    Dataset ds = makeSyntheticTask(uciTask("wine"), gen, 178);
    MlpTopology topo{13, 4, 3};
    FloatMlp fmodel(topo);
    Trainer trainer({4, 200, 0.2, 0.1});
    Rng rng(5);
    MlpWeights w = trainer.train(fmodel, ds, rng);

    FixedMlp qmodel(topo);
    qmodel.setWeights(w);
    double facc = evalAccuracy(fmodel, ds);
    double qacc = evalAccuracy(qmodel, ds);
    EXPECT_GT(facc, 0.85);
    EXPECT_NEAR(qacc, facc, 0.05);
}

TEST(FixedMlp, TrainingThroughFixedForwardWorks)
{
    // Companion-core training with the hardware forward path.
    Rng gen(17);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 150);
    MlpTopology topo{4, 8, 3};
    FixedMlp model(topo);
    Trainer trainer({8, 100, 0.2, 0.1});
    Rng rng(5);
    trainer.train(model, ds, rng);
    EXPECT_GT(evalAccuracy(model, ds), 0.8);
}

TEST(CrossVal, TenFoldOnIris)
{
    Rng gen(19);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 150);
    MlpTopology topo{4, 8, 3};
    FloatMlp model(topo);
    Rng rng(5);
    CrossValResult cv =
        crossValidate(model, ds, 10, Trainer({8, 60, 0.2, 0.1}), rng);
    EXPECT_EQ(cv.folds, 10);
    EXPECT_GT(cv.meanAccuracy, 0.75);
    EXPECT_LT(cv.stddev, 0.25);
}

TEST(CrossVal, FoldsSeeDisjointTestData)
{
    // Cross-validated accuracy must be <= resubstitution accuracy
    // in expectation; just assert it runs and is bounded.
    Rng gen(23);
    Dataset ds = makeSyntheticTask(uciTask("wine"), gen, 100);
    MlpTopology topo{13, 4, 3};
    FloatMlp model(topo);
    Rng rng(5);
    CrossValResult cv =
        crossValidate(model, ds, 5, Trainer({4, 40, 0.2, 0.1}), rng);
    EXPECT_GE(cv.meanAccuracy, 0.0);
    EXPECT_LE(cv.meanAccuracy, 1.0);
}

} // namespace
} // namespace dtann
