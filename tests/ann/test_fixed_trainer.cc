/**
 * @file
 * Tests for fully fixed-point (on-line scenario) training.
 */

#include <gtest/gtest.h>

#include "ann/fixed_mlp.hh"
#include "ann/fixed_trainer.hh"
#include "data/synth_uci.hh"

namespace dtann {
namespace {

Dataset
blobs2d(uint64_t seed)
{
    Dataset ds;
    ds.name = "blobs";
    ds.numAttributes = 2;
    ds.numClasses = 2;
    Rng rng(seed);
    for (int i = 0; i < 160; ++i) {
        int label = i % 2;
        double cx = label ? 0.75 : 0.25;
        ds.rows.push_back(
            {std::clamp(rng.nextGauss(cx, 0.12), 0.0, 1.0),
             std::clamp(rng.nextGauss(cx, 0.12), 0.0, 1.0)});
        ds.labels.push_back(label);
    }
    return ds;
}

TEST(FixedTrainer, LearnsSeparableBlobs)
{
    Dataset ds = blobs2d(5);
    MlpTopology topo{2, 4, 2};
    FixedMlp model(topo);
    // On-line fixed-point training needs a larger learning rate so
    // updates survive Q6.10 quantization.
    FixedTrainer trainer({4, 60, 0.5, 0.0});
    Rng rng(7);
    trainer.train(model, ds, rng);
    EXPECT_GT(evalAccuracy(model, ds), 0.9);
}

TEST(FixedTrainer, LearnsSyntheticIris)
{
    Rng gen(11);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 150);
    MlpTopology topo{4, 8, 3};
    FixedMlp model(topo);
    FixedTrainer trainer({8, 80, 0.5, 0.0});
    Rng rng(5);
    trainer.train(model, ds, rng);
    EXPECT_GT(evalAccuracy(model, ds), 0.8);
}

TEST(FixedTrainer, WeightsAreQuantized)
{
    Dataset ds = blobs2d(9);
    MlpTopology topo{2, 3, 2};
    FixedMlp model(topo);
    FixedTrainer trainer({3, 10, 0.5, 0.0});
    Rng rng(3);
    MlpWeights w = trainer.train(model, ds, rng);
    // Every weight is an exact multiple of 1/1024.
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i) {
            double scaled = w.hid(j, i) * Fix16::scale;
            EXPECT_DOUBLE_EQ(scaled, std::nearbyint(scaled));
        }
}

TEST(FixedTrainer, ZeroQuantizedLearningRateStalls)
{
    // With lr quantizing to exactly 0 raw, every update is zero
    // and weights must not move at all.
    Dataset ds = blobs2d(13);
    MlpTopology topo{2, 3, 2};
    FixedMlp model(topo);
    Rng rng(3);
    MlpWeights init(topo);
    init.initRandom(rng, 0.3);
    FixedTrainer trainer({3, 3, 0.0001, 0.0});
    MlpWeights out = trainer.train(model, ds, rng, &init);
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i) {
            // The trainer quantizes the warm-start weights once;
            // beyond that they must not move.
            double quantized =
                Fix16::fromDouble(init.hid(j, i)).toDouble();
            EXPECT_DOUBLE_EQ(out.hid(j, i), quantized)
                << "weight moved despite zero-quantized updates";
        }
}

TEST(FixedTrainer, TruncationBiasAtOneLsbLearningRate)
{
    // A genuine Q6.10 artifact: truncating multiplies floor toward
    // minus infinity, so a 1-LSB learning rate turns every tiny
    // negative gradient into a full -1 LSB step while positive
    // ones vanish -- weights drift downward instead of stalling.
    // This is why the on-line scenario needs healthy learning
    // rates (see Draghici / Holi & Hwang on limited-precision
    // training).
    Dataset ds = blobs2d(13);
    MlpTopology topo{2, 3, 2};
    FixedMlp model(topo);
    Rng rng(3);
    MlpWeights init(topo);
    init.initRandom(rng, 0.3);
    FixedTrainer trainer({3, 3, 1.0 / 1024.0, 0.0});
    MlpWeights out = trainer.train(model, ds, rng, &init);
    double drift = 0.0;
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i)
            drift += out.hid(j, i) - init.hid(j, i);
    EXPECT_LT(drift, 0.0) << "floor-truncation bias should pull "
                             "weights down";
}

TEST(FixedTrainer, WarmStartRetainsAccuracy)
{
    Dataset ds = blobs2d(17);
    MlpTopology topo{2, 4, 2};
    FixedMlp model(topo);
    Rng rng(5);
    FixedTrainer trainer({4, 60, 0.5, 0.0});
    MlpWeights w = trainer.train(model, ds, rng);
    double before = evalAccuracy(model, ds);
    FixedTrainer touchup({4, 5, 0.5, 0.0});
    touchup.train(model, ds, rng, &w);
    EXPECT_GE(evalAccuracy(model, ds), before - 0.1);
}

} // namespace
} // namespace dtann
