/**
 * @file
 * Tests for the activation functions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ann/sigmoid.hh"

namespace dtann {
namespace {

TEST(Logistic, KnownValues)
{
    EXPECT_DOUBLE_EQ(logistic(0.0), 0.5);
    EXPECT_NEAR(logistic(2.0), 0.8807970779778823, 1e-12);
    EXPECT_NEAR(logistic(-2.0), 1.0 - logistic(2.0), 1e-12);
}

TEST(Logistic, DerivFromY)
{
    EXPECT_DOUBLE_EQ(logisticDerivFromY(0.5), 0.25);
    EXPECT_DOUBLE_EQ(logisticDerivFromY(1.0), 0.0);
    EXPECT_DOUBLE_EQ(logisticDerivFromY(0.0), 0.0);
}

TEST(LogisticPwl, SixteenSegmentsCloseToExact)
{
    // The paper: 16 segments have "no noticeable impact" -- the
    // approximation error stays small across the range.
    double max_err = 0.0;
    for (double x = -8.0; x <= 8.0; x += 0.01) {
        double err = std::abs(logisticPwl(x) - logistic(x));
        max_err = std::max(max_err, err);
    }
    EXPECT_LT(max_err, 0.035);
}

TEST(LogisticPwl, SaturatesAtTails)
{
    EXPECT_DOUBLE_EQ(logisticPwl(50.0), 1.0);
    EXPECT_DOUBLE_EQ(logisticPwl(-50.0), 0.0);
}

TEST(LogisticPwl, MidpointIsHalf)
{
    EXPECT_NEAR(logisticPwl(0.0), 0.5, 0.01);
}

TEST(LogisticPwlFix, MatchesUnitReference)
{
    const PwlTable &t = logisticPwlTable();
    for (int raw = -32768; raw <= 32767; raw += 111) {
        Fix16 x = Fix16::fromRaw(static_cast<int16_t>(raw));
        EXPECT_EQ(logisticPwlFix(x).raw(), sigmoidUnitRef(t, x).raw());
    }
}

TEST(LogisticPwlTable, SlopesNonNegative)
{
    for (const PwlSegment &s : logisticPwlTable())
        EXPECT_GE(s.a.toDouble(), 0.0);
}

} // namespace
} // namespace dtann
