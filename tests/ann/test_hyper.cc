/**
 * @file
 * Tests for the hyper-parameter grid search.
 */

#include <gtest/gtest.h>

#include "ann/hyper.hh"
#include "data/synth_uci.hh"

namespace dtann {
namespace {

TEST(HyperSpace, PaperTableIDimensions)
{
    HyperSpace s = HyperSpace::paperTableI();
    EXPECT_EQ(s.hidden.size(), 8u);       // 2..16 step 2
    EXPECT_EQ(s.epochs.size(), 6u);       // 100..3200 x2
    EXPECT_EQ(s.learningRate.size(), 9u); // 0.1..0.9
    EXPECT_EQ(s.momentum.size(), 9u);
    EXPECT_EQ(s.size(), 8u * 6u * 9u * 9u);
    EXPECT_EQ(s.hidden.front(), 2);
    EXPECT_EQ(s.hidden.back(), 16);
    EXPECT_EQ(s.epochs.back(), 3200);
}

TEST(HyperSpace, ReducedIsSmall)
{
    HyperSpace s = HyperSpace::reduced();
    EXPECT_LT(s.size(), 50u);
    EXPECT_GT(s.size(), 0u);
}

TEST(GridSearch, FindsWorkingPointOnIris)
{
    Rng gen(3);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 120);
    HyperSpace tiny;
    tiny.hidden = {4, 8};
    tiny.epochs = {50};
    tiny.learningRate = {0.2, 0.5};
    tiny.momentum = {0.1};
    Rng rng(7);
    HyperResult r = gridSearch(ds, tiny, 3, rng);
    EXPECT_EQ(r.evaluated, tiny.size());
    EXPECT_GT(r.accuracy, 0.7);
    EXPECT_TRUE(r.best.hidden == 4 || r.best.hidden == 8);
    EXPECT_EQ(r.best.epochs, 50);
}

} // namespace
} // namespace dtann
