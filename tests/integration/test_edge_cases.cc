/**
 * @file
 * Cross-module edge cases and death tests.
 */

#include <gtest/gtest.h>

#include <csignal>

#include "ann/fixed_mlp.hh"
#include "ann/hyper.hh"
#include "core/campaign.hh"
#include "core/injector.hh"
#include "core/timemux.hh"
#include "core/yield.hh"

namespace dtann {
namespace {

TEST(EdgeCases, DatasetValidateCatchesBadLabels)
{
    Dataset ds;
    ds.name = "bad";
    ds.numAttributes = 1;
    ds.numClasses = 2;
    ds.rows = {{0.1}};
    ds.labels = {5};
    EXPECT_DEATH(ds.validate(), "label out of range");
}

TEST(EdgeCases, DatasetValidateCatchesArityMismatch)
{
    Dataset ds;
    ds.name = "bad";
    ds.numAttributes = 2;
    ds.numClasses = 2;
    ds.rows = {{0.1}};
    ds.labels = {0};
    EXPECT_DEATH(ds.validate(), "wrong arity");
}

TEST(EdgeCases, Fig5MirrorStyleKeepsOrdering)
{
    // The transistor-vs-gate ordering holds for the complex-gate
    // implementation too.
    Fig5Config cfg;
    cfg.op = Fig5Operator::Adder4;
    cfg.defects = 20;
    cfg.repetitions = 40;
    cfg.seed = 9;
    cfg.style = FaStyle::Mirror;
    Fig5Result r = runFig5(cfg);
    EXPECT_GT(r.gate.totalVariation(r.none),
              r.trans.totalVariation(r.none));
}

TEST(EdgeCases, InjectorPoolWithOnlyActivations)
{
    AcceleratorConfig cfg;
    cfg.inputs = 6;
    cfg.hidden = 3;
    cfg.outputs = 2;
    Accelerator accel(cfg, {6, 3, 2});
    SitePool pool;
    pool.latches = pool.multipliers = pool.adders = false;
    pool.activations = true;
    pool.hiddenLayer = pool.outputLayer = true;
    DefectInjector inj(accel, pool);
    EXPECT_EQ(inj.eligibleUnits(), 5u);
    Rng rng(2);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(inj.randomSite(rng).kind, UnitKind::Activation);
}

TEST(EdgeCases, TimeMuxSingleNeuronLayers)
{
    // Degenerate 1-wide layers batch correctly.
    AcceleratorConfig cfg;
    cfg.inputs = 6;
    cfg.hidden = 3;
    cfg.outputs = 2;
    Accelerator accel(cfg, {6, 3, 2});
    TimeMuxedMlp mux(accel, {6, 1, 1});
    MlpWeights w({6, 1, 1});
    Rng rng(4);
    w.initRandom(rng, 1.0);
    mux.setWeights(w);
    FixedMlp ref({6, 1, 1});
    ref.setWeights(w);
    std::vector<double> in(6, 0.5);
    EXPECT_EQ(mux.forward(in).output(), ref.forward(in).output());
}

TEST(EdgeCases, YieldWithSinglePointCurve)
{
    Fig10Curve c;
    c.task = "one";
    c.points.push_back({0, 0.9, 0.0});
    EXPECT_DOUBLE_EQ(interpolateAccuracy(c, 0), 0.9);
    EXPECT_DOUBLE_EQ(interpolateAccuracy(c, 50), 0.9);
    YieldPoint y = effectiveYield(c, 9.02, 100.0, 0.8);
    EXPECT_DOUBLE_EQ(y.effectiveYield, 1.0);
}

TEST(EdgeCases, AcceleratorBiasOnlyNetwork)
{
    // All-zero inputs: only bias synapses drive the neurons.
    AcceleratorConfig cfg;
    cfg.inputs = 4;
    cfg.hidden = 2;
    cfg.outputs = 2;
    MlpTopology topo{4, 2, 2};
    Accelerator accel(cfg, topo);
    MlpWeights w(topo);
    w.hid(0, 4) = 4.0;  // bias -> hidden 0 saturates high
    w.hid(1, 4) = -4.0; // hidden 1 low
    w.out(0, 2) = 2.0;  // output biases
    w.out(1, 2) = -2.0;
    accel.setWeights(w);
    Activations act = accel.forward(std::vector<double>(4, 0.0));
    EXPECT_GT(act.hidden()[0], 0.95);
    EXPECT_LT(act.hidden()[1], 0.05);
    EXPECT_GT(act.output()[0], 0.8);
    EXPECT_LT(act.output()[1], 0.2);
}

TEST(EdgeCases, InjectingIntoAllUnitsOfATinyArrayStillRuns)
{
    // Saturate a tiny array with defects everywhere; the model must
    // stay well-formed (outputs in range) even if useless.
    AcceleratorConfig cfg;
    cfg.inputs = 3;
    cfg.hidden = 2;
    cfg.outputs = 2;
    Accelerator accel(cfg, {3, 2, 2});
    DefectInjector inj(accel, SitePool::all());
    Rng rng(7);
    inj.inject(60, rng);
    MlpWeights w({3, 2, 2});
    w.initRandom(rng, 1.0);
    accel.setWeights(w);
    Activations act = accel.forward(std::vector<double>{0.2, 0.5, 0.8});
    for (double y : act.output()) {
        EXPECT_GE(y, -32.0);
        EXPECT_LE(y, 32.0);
    }
}

TEST(EdgeCases, HyperSpaceSingletonGrid)
{
    HyperSpace s;
    s.hidden = {4};
    s.epochs = {20};
    s.learningRate = {0.3};
    s.momentum = {0.1};
    Rng gen(5);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 60);
    Rng rng(6);
    HyperResult r = gridSearch(ds, s, 2, rng);
    EXPECT_EQ(r.evaluated, 1u);
    EXPECT_EQ(r.best.hidden, 4);
}

} // namespace
} // namespace dtann
