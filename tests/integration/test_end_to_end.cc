/**
 * @file
 * Integration tests: full pipelines across modules, plus the
 * paper's headline claims encoded as assertions.
 */

#include <gtest/gtest.h>

#include "ann/crossval.hh"
#include "ann/fixed_mlp.hh"
#include "core/campaign.hh"
#include "core/cost_model.hh"
#include "core/dma.hh"
#include "core/injector.hh"
#include "core/keylogic.hh"
#include "core/spare.hh"
#include "core/timemux.hh"
#include "cpu/simple_cpu.hh"
#include "data/synth_uci.hh"

namespace dtann {
namespace {

TEST(EndToEnd, TrainedAcceleratorKernelAndFixedMlpAgreeBitwise)
{
    // Train on the accelerator, then run the same weights through
    // the software kernel and the fixed-point reference: all three
    // must produce identical Q6.10 outputs row by row.
    Rng gen(3);
    Dataset ds = makeSyntheticTask(uciTask("wine"), gen, 150);
    AcceleratorConfig cfg;
    cfg.inputs = 16;
    cfg.hidden = 4;
    cfg.outputs = 3;
    MlpTopology topo{13, 4, 3};
    Accelerator accel(cfg, topo);
    Rng rng(5);
    MlpWeights w = Trainer({4, 40, 0.2, 0.1}).train(accel, ds, rng);

    FixedMlp fixed(topo);
    fixed.setWeights(w);
    std::vector<Fix16> hid_w, out_w;
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i)
            hid_w.push_back(fixed.hidWeight(j, i));
    for (int k = 0; k < topo.outputs; ++k)
        for (int jj = 0; jj <= topo.hidden; ++jj)
            out_w.push_back(fixed.outWeight(k, jj));

    for (size_t n = 0; n < 40; ++n) {
        const auto &row = ds.rows[n];
        Activations a = accel.forward(row);
        Activations f = fixed.forward(row);
        EXPECT_EQ(a.output(), f.output());

        std::vector<Fix16> fix_row(row.size());
        for (size_t i = 0; i < row.size(); ++i)
            fix_row[i] = Fix16::fromDouble(row[i]);
        auto k = runSoftwareKernel(topo, hid_w, out_w, fix_row);
        for (size_t c = 0; c < k.size(); ++c)
            EXPECT_DOUBLE_EQ(k[c].toDouble(), a.output()[c]);
    }
}

TEST(EndToEnd, DmaStreamedInferenceEqualsDirectCalls)
{
    Rng gen(7);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 60);
    AcceleratorConfig cfg;
    cfg.inputs = 8;
    cfg.hidden = 4;
    cfg.outputs = 3;
    Accelerator accel(cfg, {4, 4, 3});
    MlpWeights w({4, 4, 3});
    Rng rng(9);
    w.initRandom(rng, 1.0);
    accel.setWeights(w);

    // Direct path.
    std::vector<std::vector<Fix16>> direct;
    for (const auto &row : ds.rows) {
        std::vector<Fix16> phys(8);
        for (size_t i = 0; i < row.size(); ++i)
            phys[i] = Fix16::fromDouble(row[i]);
        direct.push_back(accel.forwardFix(phys));
    }
    // Streamed through the double-buffered channel.
    HandshakeChannel<DmaRow> ch;
    std::vector<std::vector<Fix16>> streamed;
    size_t next = 0;
    while (streamed.size() < ds.size()) {
        while (next < ds.size()) {
            DmaRow row(8);
            for (size_t i = 0; i < ds.rows[next].size(); ++i)
                row[i] = Fix16::fromDouble(ds.rows[next][i]);
            if (!ch.offer(std::move(row)))
                break;
            ++next;
        }
        if (ch.available()) {
            DmaRow row = ch.accept();
            streamed.push_back(accel.forwardFix(row));
        }
    }
    ASSERT_EQ(streamed.size(), direct.size());
    for (size_t r = 0; r < direct.size(); ++r)
        EXPECT_EQ(streamed[r], direct[r]) << "row " << r;
}

TEST(EndToEnd, CampaignsAreDeterministicPerSeed)
{
    Fig10Config cfg;
    cfg.tasks = {"iris"};
    cfg.defectCounts = {0, 4};
    cfg.repetitions = 2;
    cfg.folds = 2;
    cfg.rows = 80;
    cfg.epochScale = 0.2;
    cfg.retrainScale = 0.3;
    cfg.seed = 1234;
    cfg.array.inputs = 8;
    cfg.array.hidden = 4;
    cfg.array.outputs = 3;

    auto a = runFig10(cfg);
    auto b = runFig10(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t c = 0; c < a.size(); ++c)
        for (size_t p = 0; p < a[c].points.size(); ++p)
            EXPECT_DOUBLE_EQ(a[c].points[p].accuracy,
                             b[c].points[p].accuracy);
}

TEST(EndToEnd, Fig5DeterministicAndSeedSensitive)
{
    Fig5Config cfg;
    cfg.op = Fig5Operator::Adder4;
    cfg.defects = 5;
    cfg.repetitions = 10;
    cfg.seed = 5;
    Fig5Result a = runFig5(cfg);
    Fig5Result b = runFig5(cfg);
    cfg.seed = 6;
    Fig5Result c = runFig5(cfg);
    EXPECT_EQ(a.trans.items(), b.trans.items());
    EXPECT_EQ(a.gate.items(), b.gate.items());
    EXPECT_NE(a.trans.items(), c.trans.items());
}

TEST(EndToEnd, PaperHeadlineEnergyAndScalingClaims)
{
    // Two orders of magnitude better energy than a core (Abstract).
    CostModel cm((AcceleratorConfig()));
    SimpleCpuModel cpu;
    double ratio = cpu.energyRatioVs(cm.accelerator().energyPerRowNj,
                                     {90, 10, 10});
    EXPECT_GT(ratio, 100.0);
    // Key logic below 10% of area after 4 generations (Section
    // VI-A).
    EXPECT_LT(cm.keyLogicFraction(4), 0.10);
    // The interface sustains the array's bandwidth demand.
    DmaModel dma;
    EXPECT_GT(dma.peakBandwidthGBs() * 1.073741824, // GiB demand
              DmaModel::demandGBs(90 * 16, 14.92));
}

TEST(EndToEnd, TimeMuxedDefectiveNetworkRetrains)
{
    // Oversized network + physical defects + retraining, all
    // through the time-multiplexed path.
    Rng gen(11);
    Dataset ds = makeSyntheticTask(uciTask("iris"), gen, 90);
    AcceleratorConfig cfg;
    cfg.inputs = 8;
    cfg.hidden = 3;
    cfg.outputs = 3;
    Accelerator accel(cfg, {8, 3, 3});
    TimeMuxedMlp mux(accel, {4, 6, 3}); // 2 batches of hidden
    Rng rng(13);
    MlpWeights w = Trainer({6, 40, 0.3, 0.1}).train(mux, ds, rng);
    double clean = evalAccuracy(mux, ds);
    EXPECT_GT(clean, 0.7);

    DefectInjector inj(accel, SitePool::inputAndHidden());
    inj.inject(2, rng);
    Trainer({6, 15, 0.3, 0.1}).train(mux, ds, rng, &w);
    EXPECT_GT(evalAccuracy(mux, ds), 0.6);
}

TEST(EndToEnd, SparedAndDecodedPathsCompose)
{
    // Spare outputs written through a (clean) decoder still match
    // the plain network: the subsystems compose.
    AcceleratorConfig cfg;
    cfg.inputs = 8;
    cfg.hidden = 4;
    cfg.outputs = 6;
    MlpTopology logical{8, 4, 3};
    Accelerator accel(cfg, sparedTopology(logical, 2));
    SparedOutputMlp spared(accel, logical, 2);
    MlpWeights w(logical);
    Rng rng(17);
    w.initRandom(rng, 1.0);

    // Route the replicated weights through the write decoder.
    MlpWeights dup(sparedTopology(logical, 2));
    for (int j = 0; j < logical.hidden; ++j)
        for (int i = 0; i <= logical.inputs; ++i)
            dup.hid(j, i) = w.hid(j, i);
    for (int k = 0; k < logical.outputs; ++k)
        for (int j = 0; j <= logical.hidden; ++j) {
            dup.out(k, j) = w.out(k, j);
            dup.out(k + logical.outputs, j) = w.out(k, j);
        }
    WriteDecoder dec(cfg.hidden + cfg.outputs);
    writeWeightsThroughDecoder(accel, dup, dec);

    Accelerator plain(cfg, logical);
    plain.setWeights(w);
    for (int t = 0; t < 20; ++t) {
        std::vector<double> in(8);
        for (double &v : in)
            v = rng.nextDouble();
        EXPECT_EQ(spared.forward(in).output(), plain.forward(in).output());
    }
}

} // namespace
} // namespace dtann
