/**
 * @file
 * Tests for the in-order CPU cost model (Table IV).
 */

#include <gtest/gtest.h>

#include "core/cost_model.hh"
#include "cpu/simple_cpu.hh"

namespace dtann {
namespace {

TEST(SimpleCpu, PaperCyclesPerRow)
{
    SimpleCpuModel cpu;
    // Table IV: 19680 cycles per 90-10-10 row.
    EXPECT_NEAR(cpu.cyclesPerRow({90, 10, 10}), 19680.0, 1.0);
}

TEST(SimpleCpu, PaperEnergyPerRow)
{
    SimpleCpuModel cpu;
    CpuExecution e = cpu.execute({90, 10, 10});
    // 19680 cycles at 800 MHz = 24600 ns; x 2.78 W = 68388 nJ.
    EXPECT_NEAR(e.timePerRowNs, 24600.0, 2.0);
    EXPECT_NEAR(e.energyPerRowNj, 68388.0, 10.0);
    EXPECT_DOUBLE_EQ(e.avgPowerW, 2.78);
}

TEST(SimpleCpu, EnergyRatioIsAboutThreeOrdersOfMagnitude)
{
    SimpleCpuModel cpu;
    CostModel cm(AcceleratorConfig{});
    double ratio = cpu.energyRatioVs(cm.accelerator().energyPerRowNj,
                                     {90, 10, 10});
    // Paper: 68388 / 70.16 = ~975x.
    EXPECT_NEAR(ratio, 974.7, 2.0);
    EXPECT_GT(ratio, 100.0) << "accelerator must win by >2 orders";
}

TEST(SimpleCpu, AcceleratorPowerHigherButEnergyLower)
{
    // The paper's observation: the accelerator draws MORE power
    // (4.70 W vs 2.78 W) yet three orders of magnitude less energy
    // per row, thanks to the 14.92 ns row latency.
    SimpleCpuModel cpu;
    CostModel cm(AcceleratorConfig{});
    BlockCost acc = cm.accelerator();
    CpuExecution e = cpu.execute({90, 10, 10});
    EXPECT_GT(acc.powerW, e.avgPowerW);
    EXPECT_LT(acc.energyPerRowNj, e.energyPerRowNj);
    EXPECT_LT(acc.latencyNs, e.timePerRowNs);
}

TEST(SimpleCpu, CyclesScaleWithNetwork)
{
    SimpleCpuModel cpu;
    EXPECT_LT(cpu.cyclesPerRow({4, 2, 2}), cpu.cyclesPerRow({90, 10, 10}));
    EXPECT_GT(cpu.cyclesPerRow({200, 20, 10}),
              cpu.cyclesPerRow({90, 10, 10}));
}

TEST(SimpleCpu, ConfigurableClock)
{
    CpuConfig cfg;
    cfg.clockMhz = 1600.0;
    SimpleCpuModel fast(cfg);
    CpuExecution e = fast.execute({90, 10, 10});
    EXPECT_NEAR(e.timePerRowNs, 12300.0, 2.0);
}

} // namespace
} // namespace dtann
