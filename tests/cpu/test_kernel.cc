/**
 * @file
 * Tests for the software kernel and its operation counts.
 */

#include <gtest/gtest.h>

#include "ann/fixed_mlp.hh"
#include "cpu/kernel.hh"

namespace dtann {
namespace {

TEST(KernelShape, PaperNetworkCounts)
{
    KernelShape s = KernelShape::of({90, 10, 10});
    EXPECT_EQ(s.synapses, 10u * 91u + 10u * 11u); // 1020
    EXPECT_EQ(s.neurons, 20u);
}

TEST(KernelOps, ScaleWithTopology)
{
    KernelOpCounts small = kernelOpsPerRow({4, 2, 2});
    KernelOpCounts big = kernelOpsPerRow({90, 10, 10});
    EXPECT_LT(small.total(), big.total());
    EXPECT_EQ(big.multiplies,
              KernelShape::of({90, 10, 10}).synapses + 20u);
    EXPECT_EQ(big.loads, 2u * 1020u);
    EXPECT_EQ(big.lutReads, 40u);
}

TEST(Kernel, MatchesFixedMlpBitExact)
{
    // The trimmed-down C model performs the same operations as the
    // hardware (paper Section V) -- verify bit-exact equivalence.
    MlpTopology topo{6, 3, 2};
    MlpWeights w(topo);
    Rng rng(3);
    w.initRandom(rng, 2.0);
    FixedMlp ref(topo);
    ref.setWeights(w);

    // Flatten quantized weights the way the kernel expects.
    std::vector<Fix16> hid_w, out_w;
    for (int j = 0; j < topo.hidden; ++j)
        for (int i = 0; i <= topo.inputs; ++i)
            hid_w.push_back(ref.hidWeight(j, i));
    for (int k = 0; k < topo.outputs; ++k)
        for (int jj = 0; jj <= topo.hidden; ++jj)
            out_w.push_back(ref.outWeight(k, jj));

    for (int t = 0; t < 50; ++t) {
        std::vector<Fix16> in(6);
        for (auto &v : in)
            v = Fix16::fromDouble(rng.nextDouble());
        std::vector<Fix16> kernel_out =
            runSoftwareKernel(topo, hid_w, out_w, in);
        std::vector<Fix16> ref_out = ref.forwardFix(in);
        EXPECT_EQ(kernel_out.size(), ref_out.size());
        for (size_t k = 0; k < ref_out.size(); ++k)
            EXPECT_EQ(kernel_out[k].raw(), ref_out[k].raw());
    }
}

} // namespace
} // namespace dtann
