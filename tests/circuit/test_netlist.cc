/**
 * @file
 * Unit tests for the structural netlist.
 */

#include <gtest/gtest.h>

#include "circuit/netlist.hh"

namespace dtann {
namespace {

TEST(Netlist, AddGateCreatesOutputNet)
{
    Netlist nl;
    NetId a = nl.addNet();
    NetId b = nl.addNet();
    NetId out = nl.addGate(GateKind::Nand2, {a, b});
    EXPECT_EQ(nl.numGates(), 1u);
    EXPECT_EQ(nl.numNets(), 3u);
    EXPECT_EQ(nl.gate(0).out, out);
    EXPECT_EQ(nl.gate(0).in[0], a);
    EXPECT_EQ(nl.gate(0).in[1], b);
}

TEST(Netlist, ConstNetsAreShared)
{
    Netlist nl;
    NetId c1 = nl.constNet(true);
    NetId c2 = nl.constNet(true);
    NetId c0 = nl.constNet(false);
    EXPECT_EQ(c1, c2);
    EXPECT_NE(c1, c0);
    EXPECT_EQ(nl.numGates(), 2u);
}

TEST(Netlist, InputOutputOrderPreserved)
{
    Netlist nl;
    NetId a = nl.addNet();
    NetId b = nl.addNet();
    nl.markInput(a);
    nl.markInput(b);
    NetId out = nl.addGate(GateKind::Nand2, {a, b});
    nl.markOutput(out);
    ASSERT_EQ(nl.inputs().size(), 2u);
    EXPECT_EQ(nl.inputs()[0], a);
    EXPECT_EQ(nl.inputs()[1], b);
    ASSERT_EQ(nl.outputs().size(), 1u);
    EXPECT_EQ(nl.outputs()[0], out);
}

TEST(Netlist, GroupTagging)
{
    Netlist nl;
    NetId a = nl.addNet();
    nl.setGroup(0);
    nl.addGate(GateKind::Not, {a});
    nl.setGroup(3);
    nl.addGate(GateKind::Not, {a});
    EXPECT_EQ(nl.gate(0).group, 0);
    EXPECT_EQ(nl.gate(1).group, 3);
    EXPECT_EQ(nl.numGroups(), 4);
}

TEST(Netlist, TransistorCount)
{
    Netlist nl;
    NetId a = nl.addNet();
    NetId b = nl.addNet();
    nl.addGate(GateKind::Nand2, {a, b}); // 4
    nl.addGate(GateKind::Not, {a});      // 2
    nl.constNet(false);                  // 0
    EXPECT_EQ(nl.transistorCount(), 6u);
}

TEST(Netlist, DepthOfChain)
{
    Netlist nl;
    NetId a = nl.addNet();
    NetId x = nl.addGate(GateKind::Not, {a});
    NetId y = nl.addGate(GateKind::Not, {x});
    NetId z = nl.addGate(GateKind::Not, {y});
    (void)z;
    EXPECT_EQ(nl.depth(), 3);
}

TEST(Netlist, DepthOfParallelGates)
{
    Netlist nl;
    NetId a = nl.addNet();
    NetId b = nl.addNet();
    nl.addGate(GateKind::Not, {a});
    nl.addGate(GateKind::Not, {b});
    EXPECT_EQ(nl.depth(), 1);
}

TEST(Netlist, FeedbackDetected)
{
    Netlist nl;
    NetId a = nl.addNet();
    nl.markInput(a);
    NetId loop = nl.addNet();
    NetId q = nl.addGate(GateKind::Nand2, {a, loop});
    nl.addGateOnto(GateKind::Not, {q}, loop);
    EXPECT_TRUE(nl.hasFeedback());
}

TEST(Netlist, NoFeedbackInDag)
{
    Netlist nl;
    NetId a = nl.addNet();
    nl.markInput(a);
    NetId x = nl.addGate(GateKind::Not, {a});
    nl.addGate(GateKind::Not, {x});
    EXPECT_FALSE(nl.hasFeedback());
}

} // namespace
} // namespace dtann
