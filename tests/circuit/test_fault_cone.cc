/**
 * @file
 * Tests for the fault-cone analysis feeding the pruned evaluators.
 */

#include <gtest/gtest.h>

#include "circuit/evaluator.hh"
#include "circuit/fault_cone.hh"
#include "common/rng.hh"
#include "rtl/adder.hh"
#include "rtl/fault_inject.hh"
#include "rtl/latch.hh"
#include "rtl/multiplier.hh"

namespace dtann {
namespace {

TEST(FaultCone, EmptyFaultSetIsInvalid)
{
    Netlist nl = buildRippleAdder(4, FaStyle::Nand9, true);
    FaultCone cone = computeFaultCone(nl, FaultSet{});
    EXPECT_FALSE(cone.valid);
}

TEST(FaultCone, FeedbackNetlistIsInvalid)
{
    Netlist nl = buildLatchRegister(4);
    ASSERT_TRUE(nl.hasFeedback());
    FaultSet faults;
    faults.stuckAt.push_back({0, -1, true});
    FaultCone cone = computeFaultCone(nl, faults);
    EXPECT_FALSE(cone.valid);
}

TEST(FaultCone, ActiveGatesAreClosedUnderFanIn)
{
    // Every active gate's input drivers must themselves be active:
    // the pruned sweep evaluates only activeGates, so any net an
    // active gate reads must have a simulated (or primary-input)
    // value. The list must also be ascending = topological.
    Netlist nl = buildMultiplierUnsigned(6, FaStyle::Nand9);
    Rng rng(11);
    for (int trial = 0; trial < 25; ++trial) {
        Injection inj = injectTransistorDefects(nl, 2, rng);
        FaultCone cone = computeFaultCone(nl, inj.faults);
        ASSERT_TRUE(cone.valid);
        ASSERT_FALSE(cone.activeGates.empty());
        EXPECT_GE(cone.activeGates.size(), cone.coneSize);

        std::vector<uint8_t> active(nl.numGates(), 0);
        uint32_t prev = 0;
        for (size_t i = 0; i < cone.activeGates.size(); ++i) {
            uint32_t gi = cone.activeGates[i];
            if (i > 0) {
                EXPECT_GT(gi, prev);
            }
            prev = gi;
            active[gi] = 1;
        }
        std::vector<uint32_t> driver(nl.numNets(), UINT32_MAX);
        for (size_t gi = 0; gi < nl.numGates(); ++gi)
            driver[nl.gate(gi).out] = static_cast<uint32_t>(gi);
        for (uint32_t gi : cone.activeGates) {
            const Gate &g = nl.gate(gi);
            for (int i = 0; i < g.arity(); ++i) {
                uint32_t d = driver[g.in[i]];
                if (d != UINT32_MAX) {
                    EXPECT_TRUE(active[d])
                        << "gate " << gi << " reads un-simulated net";
                }
            }
        }
    }
}

TEST(FaultCone, OutOfConeOutputsAreClean)
{
    // The semantic guarantee behind output splicing: for every
    // input vector, output bits outside the cone's mask are
    // bit-identical between the faulty and the clean netlist.
    Netlist nl = buildRippleAdder(4, FaStyle::Nand9, true);
    Rng rng(7);
    for (int trial = 0; trial < 25; ++trial) {
        Injection inj = injectTransistorDefects(nl, 1, rng);
        FaultCone cone = computeFaultCone(nl, inj.faults);
        ASSERT_TRUE(cone.valid);

        Evaluator clean(nl);
        Evaluator faulty(nl, inj.faults);
        for (uint64_t v = 0; v < 256; ++v) {
            uint64_t c = clean.evaluateBits(v);
            uint64_t f = faulty.evaluateBits(v);
            EXPECT_EQ(c & ~cone.outputMask, f & ~cone.outputMask)
                << "trial " << trial << " vector " << v;
        }
    }
}

TEST(FaultCone, SingleOutputGateFaultHasNarrowCone)
{
    // A stuck-at on the gate driving the carry-out (the netlist's
    // last gate) can only affect outputs fed by that gate.
    Netlist nl = buildRippleAdder(8, FaStyle::Nand9, true);
    uint32_t last = static_cast<uint32_t>(nl.numGates() - 1);
    FaultSet faults;
    faults.stuckAt.push_back({last, -1, true});
    FaultCone cone = computeFaultCone(nl, faults);
    ASSERT_TRUE(cone.valid);
    // The fanout cone is small even though the support reaches back
    // through the whole carry chain.
    EXPECT_LT(cone.coneSize, nl.numGates() / 2);
    EXPECT_NE(cone.outputMask, 0u);
}

} // namespace
} // namespace dtann
