/**
 * @file
 * Unit tests for netlist evaluation, including faults and state.
 */

#include <gtest/gtest.h>

#include "circuit/evaluator.hh"

namespace dtann {
namespace {

/** Two-input XOR from four NANDs, for exercising multi-level logic. */
Netlist
xorNetlist()
{
    Netlist nl;
    NetId a = nl.addNet();
    NetId b = nl.addNet();
    nl.markInput(a);
    nl.markInput(b);
    NetId n1 = nl.addGate(GateKind::Nand2, {a, b});
    NetId n2 = nl.addGate(GateKind::Nand2, {a, n1});
    NetId n3 = nl.addGate(GateKind::Nand2, {b, n1});
    NetId out = nl.addGate(GateKind::Nand2, {n2, n3});
    nl.markOutput(out);
    return nl;
}

TEST(Evaluator, CombinationalXor)
{
    Netlist nl = xorNetlist();
    Evaluator ev(nl);
    for (uint64_t in = 0; in < 4; ++in) {
        uint64_t out = ev.evaluateBits(in);
        EXPECT_EQ(out, ((in & 1) ^ (in >> 1)) & 1) << "in=" << in;
    }
}

TEST(Evaluator, ConvergesInOneSweepForTopologicalOrder)
{
    Netlist nl = xorNetlist();
    Evaluator ev(nl);
    ev.evaluateBits(0b01);
    // One sweep to settle plus one to confirm stability.
    EXPECT_LE(ev.lastSweeps(), 2);
    EXPECT_FALSE(ev.lastOscillated());
}

TEST(Evaluator, InputRangeAddressing)
{
    Netlist nl = xorNetlist();
    Evaluator ev(nl);
    ev.setInputRange(0, 1, 1);
    ev.setInputRange(1, 1, 0);
    ev.evaluate();
    EXPECT_TRUE(ev.output(0));
    EXPECT_EQ(ev.outputRange(0, 1), 1u);
}

TEST(Evaluator, StuckAtInputFault)
{
    Netlist nl = xorNetlist();
    // Force input 0 of the first NAND (net a) to 1: gate 0 computes
    // NAND(1, b) = !b, turning XOR(a,b) into XOR-with-a-corrupted
    // first term.
    FaultSet faults;
    faults.stuckAt.push_back({0, 0, true});
    Evaluator ev(nl, std::move(faults));
    // a=0, b=1: clean XOR = 1. With the fault, n1 = NAND(1,1) = 0,
    // n2 = NAND(0,0) = 1, n3 = NAND(1,0) = 1, out = NAND(1,1) = 0.
    EXPECT_EQ(ev.evaluateBits(0b10), 0u);
}

TEST(Evaluator, StuckAtOutputFault)
{
    Netlist nl = xorNetlist();
    // Stick the final NAND output at 1.
    FaultSet faults;
    faults.stuckAt.push_back({3, -1, true});
    Evaluator ev(nl, std::move(faults));
    for (uint64_t in = 0; in < 4; ++in)
        EXPECT_EQ(ev.evaluateBits(in), 1u);
}

TEST(Evaluator, OverrideFunctionReplacesGate)
{
    Netlist nl = xorNetlist();
    // Replace the final NAND with a NOR truth table.
    FaultSet faults;
    faults.overrides[3] = GateFunction::fromGateKind(GateKind::Nor2);
    Evaluator ev(nl, std::move(faults));
    // a=1,b=1: n1=0, n2=NAND(1,0)=1, n3=1; NOR(1,1)=0 (same as
    // clean XOR here). a=0,b=0: n1=1, n2=1, n3=1; NOR(1,1)=0 ==
    // clean. a=1,b=0: n1=1, n2=0, n3=1; NOR(0,1)=0, clean XOR=1.
    EXPECT_EQ(ev.evaluateBits(0b01), 0u);
}

TEST(Evaluator, MemHoldsPreviousValue)
{
    // Single inverter whose faulty function floats when input is 1:
    // in=0 -> 1, in=1 -> MEM.
    Netlist nl;
    NetId a = nl.addNet();
    nl.markInput(a);
    NetId out = nl.addGate(GateKind::Not, {a});
    nl.markOutput(out);

    FaultSet faults;
    faults.overrides[0] = GateFunction(1, 0b01, 0b10);
    Evaluator ev(nl, std::move(faults));
    EXPECT_EQ(ev.evaluateBits(0), 1u);
    // Floats: retains 1.
    EXPECT_EQ(ev.evaluateBits(1), 1u);
    ev.reset();
    // After reset the floating node reads its cleared value 0.
    EXPECT_EQ(ev.evaluateBits(1), 0u);
}

TEST(Evaluator, DelayedGateLagsOneEvaluation)
{
    Netlist nl;
    NetId a = nl.addNet();
    nl.markInput(a);
    NetId out = nl.addGate(GateKind::Not, {a});
    nl.markOutput(out);

    FaultSet faults;
    faults.delayed.insert(0);
    Evaluator ev(nl, std::move(faults));
    // First evaluation outputs the reset value (0), stores !0... the
    // input of this round: in=0 -> pending=1.
    EXPECT_EQ(ev.evaluateBits(0), 0u);
    // Second round outputs the pending 1 regardless of input.
    EXPECT_EQ(ev.evaluateBits(1), 1u);
    // Pending from in=1 is 0.
    EXPECT_EQ(ev.evaluateBits(0), 0u);
    EXPECT_EQ(ev.evaluateBits(0), 1u);
}

TEST(Evaluator, CrossCoupledLatchConverges)
{
    // Gated SR: S~ = NAND(d, en), R~ = NAND(!d, en), cross-coupled
    // output pair.
    Netlist nl;
    NetId d = nl.addNet();
    NetId en = nl.addNet();
    nl.markInput(d);
    nl.markInput(en);
    NetId dn = nl.addGate(GateKind::Not, {d});
    NetId sn = nl.addGate(GateKind::Nand2, {d, en});
    NetId rn = nl.addGate(GateKind::Nand2, {dn, en});
    NetId qb = nl.addNet();
    NetId q = nl.addGate(GateKind::Nand2, {sn, qb});
    nl.addGateOnto(GateKind::Nand2, {rn, q}, qb);
    nl.markOutput(q);

    Evaluator ev(nl);
    // Write 1.
    ev.setInput(0, true);
    ev.setInput(1, true);
    ev.evaluate();
    EXPECT_TRUE(ev.output(0));
    EXPECT_FALSE(ev.lastOscillated());
    // Close the latch, change D: Q must hold.
    ev.setInput(1, false);
    ev.evaluate();
    ev.setInput(0, false);
    ev.evaluate();
    EXPECT_TRUE(ev.output(0));
    // Write 0.
    ev.setInput(1, true);
    ev.evaluate();
    EXPECT_FALSE(ev.output(0));
}

TEST(Evaluator, RingOscillatorHitsSweepCap)
{
    // A 3-inverter ring never settles; the evaluator must stop at
    // the sweep cap and report oscillation rather than hang.
    Netlist nl;
    NetId loop = nl.addNet();
    NetId x = nl.addGate(GateKind::Not, {loop});
    NetId y = nl.addGate(GateKind::Not, {x});
    nl.addGateOnto(GateKind::Not, {y}, loop);
    nl.markOutput(loop);
    Evaluator ev(nl);
    ev.evaluate();
    EXPECT_TRUE(ev.lastOscillated());
}

TEST(Evaluator, FaultSetMergeCombinesAllKinds)
{
    FaultSet a, b;
    a.overrides[1] = GateFunction::fromGateKind(GateKind::Nor2);
    a.stuckAt.push_back({0, 0, true});
    b.overrides[2] = GateFunction::fromGateKind(GateKind::Nand2);
    b.delayed.insert(3);
    b.stuckAt.push_back({4, -1, false});
    a.merge(b);
    EXPECT_EQ(a.overrides.size(), 2u);
    EXPECT_EQ(a.stuckAt.size(), 2u);
    EXPECT_EQ(a.delayed.count(3), 1u);
    EXPECT_FALSE(a.empty());
    FaultSet empty;
    EXPECT_TRUE(empty.empty());
}

TEST(Evaluator, StatePersistsAcrossEvaluateCalls)
{
    Netlist nl;
    NetId a = nl.addNet();
    nl.markInput(a);
    NetId out = nl.addGate(GateKind::Not, {a});
    nl.markOutput(out);
    FaultSet faults;
    faults.overrides[0] = GateFunction(1, 0b01, 0b10); // MEM on in=1
    Evaluator ev(nl, std::move(faults));
    ev.evaluateBits(0);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(ev.evaluateBits(1), 1u) << "iteration " << i;
}

} // namespace
} // namespace dtann
