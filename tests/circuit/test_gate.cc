/**
 * @file
 * Unit tests for gate primitives and truth tables.
 */

#include <gtest/gtest.h>

#include "circuit/gate.hh"
#include "circuit/gate_function.hh"

namespace dtann {
namespace {

std::vector<GateKind>
allRealGates()
{
    return {GateKind::Not, GateKind::Nand2, GateKind::Nand3,
            GateKind::Nor2, GateKind::Nor3, GateKind::Aoi21,
            GateKind::Aoi22, GateKind::Oai21, GateKind::Oai22,
            GateKind::CarryN, GateKind::MirrorSumN};
}

TEST(Gate, ArityMatchesKind)
{
    EXPECT_EQ(gateArity(GateKind::Const0), 0);
    EXPECT_EQ(gateArity(GateKind::Not), 1);
    EXPECT_EQ(gateArity(GateKind::Nand2), 2);
    EXPECT_EQ(gateArity(GateKind::Aoi21), 3);
    EXPECT_EQ(gateArity(GateKind::Aoi22), 4);
    EXPECT_EQ(gateArity(GateKind::CarryN), 3);
    EXPECT_EQ(gateArity(GateKind::MirrorSumN), 4);
}

TEST(Gate, BasicTruth)
{
    EXPECT_TRUE(gateEval(GateKind::Nand2, 0b00));
    EXPECT_TRUE(gateEval(GateKind::Nand2, 0b01));
    EXPECT_FALSE(gateEval(GateKind::Nand2, 0b11));
    EXPECT_TRUE(gateEval(GateKind::Nor2, 0b00));
    EXPECT_FALSE(gateEval(GateKind::Nor2, 0b10));
    EXPECT_TRUE(gateEval(GateKind::Not, 0));
    EXPECT_FALSE(gateEval(GateKind::Not, 1));
}

TEST(Gate, Aoi21Truth)
{
    // !((a & b) | c)
    for (uint32_t in = 0; in < 8; ++in) {
        bool a = in & 1, b = in & 2, c = in & 4;
        EXPECT_EQ(gateEval(GateKind::Aoi21, in), !((a && b) || c));
    }
}

TEST(Gate, Oai22Truth)
{
    for (uint32_t in = 0; in < 16; ++in) {
        bool a = in & 1, b = in & 2, c = in & 4, d = in & 8;
        EXPECT_EQ(gateEval(GateKind::Oai22, in),
                  !((a || b) && (c || d)));
    }
}

TEST(Gate, CarryNIsInvertedMajority)
{
    for (uint32_t in = 0; in < 8; ++in) {
        int a = in & 1, b = (in >> 1) & 1, c = (in >> 2) & 1;
        bool maj = a + b + c >= 2;
        EXPECT_EQ(gateEval(GateKind::CarryN, in), !maj) << "in=" << in;
    }
}

TEST(Gate, MirrorSumProducesXor3)
{
    // With d = CarryN(a,b,c), !MirrorSumN(a,b,c,d) == a^b^c.
    for (uint32_t in = 0; in < 8; ++in) {
        int a = in & 1, b = (in >> 1) & 1, c = (in >> 2) & 1;
        uint32_t coutn = gateEval(GateKind::CarryN, in) ? 1 : 0;
        bool sumn = gateEval(GateKind::MirrorSumN, in | (coutn << 3));
        EXPECT_EQ(!sumn, (a ^ b ^ c) != 0) << "in=" << in;
    }
}

TEST(Gate, TransistorCounts)
{
    EXPECT_EQ(gateTransistorCount(GateKind::Not), 2);
    EXPECT_EQ(gateTransistorCount(GateKind::Nand2), 4);
    EXPECT_EQ(gateTransistorCount(GateKind::Nand3), 6);
    EXPECT_EQ(gateTransistorCount(GateKind::Aoi22), 8);
    EXPECT_EQ(gateTransistorCount(GateKind::CarryN), 10);
    EXPECT_EQ(gateTransistorCount(GateKind::MirrorSumN), 14);
    EXPECT_EQ(gateTransistorCount(GateKind::Const0), 0);
}

TEST(Gate, NamesAreDistinct)
{
    auto kinds = allRealGates();
    for (size_t i = 0; i < kinds.size(); ++i)
        for (size_t j = i + 1; j < kinds.size(); ++j)
            EXPECT_STRNE(gateName(kinds[i]), gateName(kinds[j]));
}

TEST(GateFunction, FromKindRoundTrip)
{
    for (GateKind k : allRealGates()) {
        GateFunction f = GateFunction::fromGateKind(k);
        EXPECT_EQ(f.numInputs(), gateArity(k));
        EXPECT_FALSE(f.hasMem());
        EXPECT_TRUE(f.matchesKind(k));
        for (uint32_t in = 0; in < (1u << gateArity(k)); ++in) {
            LogicValue lv = f.eval(in);
            EXPECT_EQ(lv == LogicValue::One, gateEval(k, in))
                << gateName(k) << " in=" << in;
        }
    }
}

TEST(GateFunction, MemEntriesReported)
{
    // NAND2-like function with MEM on input combination 3.
    GateFunction f(2, 0b0111, 0b1000);
    EXPECT_TRUE(f.hasMem());
    EXPECT_EQ(f.eval(3), LogicValue::Mem);
    EXPECT_EQ(f.eval(0), LogicValue::One);
    EXPECT_FALSE(f.matchesKind(GateKind::Nand2));
}

} // namespace
} // namespace dtann
