/**
 * @file
 * Tests for the 64-lane batch evaluator.
 */

#include <gtest/gtest.h>

#include "circuit/batch_evaluator.hh"
#include "circuit/evaluator.hh"
#include "common/rng.hh"
#include "rtl/adder.hh"
#include "rtl/multiplier.hh"

namespace dtann {
namespace {

TEST(BatchEvaluator, MatchesScalarEvaluatorExhaustively)
{
    Netlist nl = buildRippleAdder(4, FaStyle::Nand9, true);
    Evaluator scalar(nl);
    BatchEvaluator batch(nl);

    std::vector<uint64_t> vectors;
    for (uint64_t v = 0; v < 256; ++v) {
        vectors.push_back(v);
        if (vectors.size() == 64 || v == 255) {
            auto outs = batch.evaluateVectors(vectors);
            for (size_t l = 0; l < vectors.size(); ++l)
                EXPECT_EQ(outs[l], scalar.evaluateBits(vectors[l]))
                    << "vector " << vectors[l];
            vectors.clear();
        }
    }
}

TEST(BatchEvaluator, AllGateKindsViaMirrorMultiplier)
{
    // The mirror multiplier exercises CarryN/MirrorSumN plus the
    // basic kinds; random vectors must agree with the scalar path.
    Netlist nl = buildMultiplierSigned(6, FaStyle::Mirror);
    Evaluator scalar(nl);
    BatchEvaluator batch(nl);
    Rng rng(3);
    std::vector<uint64_t> vectors;
    for (int i = 0; i < 64; ++i)
        vectors.push_back(rng.nextUint(1ull << 12));
    auto outs = batch.evaluateVectors(vectors);
    for (size_t l = 0; l < vectors.size(); ++l)
        EXPECT_EQ(outs[l], scalar.evaluateBits(vectors[l]));
}

TEST(BatchEvaluator, LaneIndependence)
{
    // Changing one lane's input must not affect other lanes.
    Netlist nl = buildRippleAdder(8, FaStyle::Nand9, false);
    BatchEvaluator batch(nl);
    std::vector<uint64_t> base(10, 0x0101);
    auto ref = batch.evaluateVectors(base);
    std::vector<uint64_t> tweaked = base;
    tweaked[4] = 0xff7f;
    auto got = batch.evaluateVectors(tweaked);
    for (size_t l = 0; l < base.size(); ++l) {
        if (l == 4)
            EXPECT_NE(got[l], ref[l]);
        else
            EXPECT_EQ(got[l], ref[l]);
    }
}

TEST(BatchEvaluator, RejectsFeedbackNetlists)
{
    Netlist nl;
    NetId a = nl.addNet();
    nl.markInput(a);
    NetId loop = nl.addNet();
    NetId q = nl.addGate(GateKind::Nand2, {a, loop});
    nl.addGateOnto(GateKind::Not, {q}, loop);
    nl.markOutput(q);
    EXPECT_EXIT(
        {
            BatchEvaluator be(nl);
            (void)be;
        },
        ::testing::ExitedWithCode(1), "feedback");
}

TEST(BatchEvaluator, ConstantsDriveAllLanes)
{
    Netlist nl;
    NetId one = nl.constNet(true);
    NetId zero = nl.constNet(false);
    NetId a = nl.addNet();
    nl.markInput(a);
    nl.markOutput(nl.addGate(GateKind::Nand2, {one, a}));
    nl.markOutput(nl.addGate(GateKind::Nor2, {zero, a}));
    BatchEvaluator batch(nl);
    batch.setInputLanes(0, 0x00ff00ff00ff00ffull);
    batch.evaluate();
    EXPECT_EQ(batch.outputLanes(0), ~0x00ff00ff00ff00ffull); // !a
    EXPECT_EQ(batch.outputLanes(1), ~0x00ff00ff00ff00ffull); // !a
}

} // namespace
} // namespace dtann
