/**
 * @file
 * Tests for the 64-lane batch evaluator.
 */

#include <gtest/gtest.h>

#include "circuit/batch_evaluator.hh"
#include "circuit/evaluator.hh"
#include "common/rng.hh"
#include "rtl/adder.hh"
#include "rtl/multiplier.hh"

namespace dtann {
namespace {

TEST(BatchEvaluator, MatchesScalarEvaluatorExhaustively)
{
    Netlist nl = buildRippleAdder(4, FaStyle::Nand9, true);
    Evaluator scalar(nl);
    BatchEvaluator batch(nl);

    std::vector<uint64_t> vectors;
    for (uint64_t v = 0; v < 256; ++v) {
        vectors.push_back(v);
        if (vectors.size() == 64 || v == 255) {
            auto outs = batch.evaluateVectors(vectors);
            for (size_t l = 0; l < vectors.size(); ++l)
                EXPECT_EQ(outs[l], scalar.evaluateBits(vectors[l]))
                    << "vector " << vectors[l];
            vectors.clear();
        }
    }
}

TEST(BatchEvaluator, AllGateKindsViaMirrorMultiplier)
{
    // The mirror multiplier exercises CarryN/MirrorSumN plus the
    // basic kinds; random vectors must agree with the scalar path.
    Netlist nl = buildMultiplierSigned(6, FaStyle::Mirror);
    Evaluator scalar(nl);
    BatchEvaluator batch(nl);
    Rng rng(3);
    std::vector<uint64_t> vectors;
    for (int i = 0; i < 64; ++i)
        vectors.push_back(rng.nextUint(1ull << 12));
    auto outs = batch.evaluateVectors(vectors);
    for (size_t l = 0; l < vectors.size(); ++l)
        EXPECT_EQ(outs[l], scalar.evaluateBits(vectors[l]));
}

TEST(BatchEvaluator, LaneIndependence)
{
    // Changing one lane's input must not affect other lanes.
    Netlist nl = buildRippleAdder(8, FaStyle::Nand9, false);
    BatchEvaluator batch(nl);
    std::vector<uint64_t> base(10, 0x0101);
    auto ref = batch.evaluateVectors(base);
    std::vector<uint64_t> tweaked = base;
    tweaked[4] = 0xff7f;
    auto got = batch.evaluateVectors(tweaked);
    for (size_t l = 0; l < base.size(); ++l) {
        if (l == 4)
            EXPECT_NE(got[l], ref[l]);
        else
            EXPECT_EQ(got[l], ref[l]);
    }
}

TEST(BatchEvaluator, TryCreateRejectsFeedbackNetlists)
{
    Netlist nl;
    NetId a = nl.addNet();
    nl.markInput(a);
    NetId loop = nl.addNet();
    NetId q = nl.addGate(GateKind::Nand2, {a, loop});
    nl.addGateOnto(GateKind::Not, {q}, loop);
    nl.markOutput(q);

    // Recoverable: callers probe with supports()/tryCreate() and
    // fall back to the scalar evaluator instead of dying.
    const char *why = nullptr;
    EXPECT_FALSE(BatchEvaluator::supports(nl, {}, &why));
    ASSERT_NE(why, nullptr);
    EXPECT_NE(std::string(why).find("feedback"), std::string::npos);
    EXPECT_FALSE(BatchEvaluator::tryCreate(nl).has_value());
}

TEST(BatchEvaluator, TryCreateRejectsStatefulFaultSets)
{
    Netlist nl = buildRippleAdder(4, FaStyle::Nand9, true);

    FaultSet delayed;
    delayed.delayed.insert(0);
    EXPECT_FALSE(delayed.isStateless());
    const char *why = nullptr;
    EXPECT_FALSE(BatchEvaluator::supports(nl, delayed, &why));
    ASSERT_NE(why, nullptr);
    EXPECT_NE(std::string(why).find("stateful"), std::string::npos);
    EXPECT_FALSE(BatchEvaluator::tryCreate(nl, delayed).has_value());

    // A MEM truth-table entry also makes the set stateful.
    FaultSet mem;
    int arity = nl.gate(0).arity();
    mem.overrides[0] = GateFunction(arity, 0, 1); // combo 0 floats
    EXPECT_FALSE(mem.isStateless());
    EXPECT_FALSE(BatchEvaluator::tryCreate(nl, mem).has_value());

    // Stuck-ats and MEM-free overrides are state-free and accepted.
    FaultSet stateless;
    stateless.stuckAt.push_back({0, -1, true});
    stateless.overrides[1] =
        GateFunction::fromGateKind(nl.gate(1).kind);
    EXPECT_TRUE(stateless.isStateless());
    EXPECT_TRUE(BatchEvaluator::tryCreate(nl, stateless).has_value());
}

TEST(BatchEvaluator, FaultyLanesMatchScalarEvaluator)
{
    Netlist nl = buildMultiplierUnsigned(4, FaStyle::Nand9);
    Rng rng(17);
    for (int trial = 0; trial < 20; ++trial) {
        // Random state-free fault set: stuck-ats plus a wrong-
        // function override.
        FaultSet faults;
        uint32_t g1 = static_cast<uint32_t>(
            rng.nextUint(nl.numGates()));
        faults.stuckAt.push_back(
            {g1, static_cast<int8_t>(-1), rng.nextUint(2) == 1});
        uint32_t g2 = static_cast<uint32_t>(
            rng.nextUint(nl.numGates()));
        int in_idx =
            static_cast<int>(rng.nextUint(
                static_cast<uint64_t>(nl.gate(g2).arity())));
        faults.stuckAt.push_back(
            {g2, static_cast<int8_t>(in_idx), rng.nextUint(2) == 1});
        uint32_t g3 = static_cast<uint32_t>(
            rng.nextUint(nl.numGates()));
        int arity = nl.gate(g3).arity();
        faults.overrides[g3] = GateFunction(
            arity,
            static_cast<uint32_t>(rng.nextUint(1ull << (1 << arity))),
            0);
        ASSERT_TRUE(faults.isStateless());

        Evaluator scalar(nl, faults);
        auto batch = BatchEvaluator::tryCreate(nl, faults);
        ASSERT_TRUE(batch.has_value());

        std::vector<uint64_t> vectors(64);
        for (auto &v : vectors)
            v = rng.nextUint(1ull << 8);
        auto outs = batch->evaluateVectors(vectors);
        for (size_t l = 0; l < vectors.size(); ++l)
            EXPECT_EQ(outs[l], scalar.evaluateBits(vectors[l]))
                << "trial " << trial << " vector " << vectors[l];
    }
}

TEST(BatchEvaluator, ConstantsDriveAllLanes)
{
    Netlist nl;
    NetId one = nl.constNet(true);
    NetId zero = nl.constNet(false);
    NetId a = nl.addNet();
    nl.markInput(a);
    nl.markOutput(nl.addGate(GateKind::Nand2, {one, a}));
    nl.markOutput(nl.addGate(GateKind::Nor2, {zero, a}));
    BatchEvaluator batch(nl);
    batch.setInputLanes(0, 0x00ff00ff00ff00ffull);
    batch.evaluate();
    EXPECT_EQ(batch.outputLanes(0), ~0x00ff00ff00ff00ffull); // !a
    EXPECT_EQ(batch.outputLanes(1), ~0x00ff00ff00ff00ffull); // !a
}

} // namespace
} // namespace dtann
