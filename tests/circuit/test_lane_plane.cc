/**
 * @file
 * Wide lane planes (DESIGN.md §9): DTANN_LANES width/ISA
 * negotiation, and bit-identity of the sweep kernels across every
 * supported plane width — the single-word 64-lane layout is the
 * oracle, and the generic unrolled kernels must agree with whatever
 * SIMD kernel the machine dispatches to.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "circuit/batch_evaluator.hh"
#include "circuit/lane_plane.hh"
#include "common/rng.hh"
#include "rtl/clean_model.hh"
#include "rtl/fault_inject.hh"
#include "rtl/multiplier.hh"

namespace dtann {
namespace {

/** Save DTANN_LANES on entry, restore it on scope exit. */
struct LaneEnvGuard
{
    bool had;
    std::string saved;
    LaneEnvGuard()
    {
        const char *v = std::getenv("DTANN_LANES");
        had = v != nullptr;
        if (had)
            saved = v;
    }
    ~LaneEnvGuard()
    {
        if (had)
            setenv("DTANN_LANES", saved.c_str(), 1);
        else
            unsetenv("DTANN_LANES");
    }
};

TEST(LanePlane, KnobResolvesWidthLive)
{
    LaneEnvGuard guard;
    setenv("DTANN_LANES", "64", 1);
    EXPECT_EQ(batchLaneWords(), 1u);
    EXPECT_EQ(batchLaneWidth(), 64u);
    setenv("DTANN_LANES", "256", 1);
    EXPECT_EQ(batchLaneWords(), 4u);
    EXPECT_EQ(batchLaneWidth(), 256u);
    setenv("DTANN_LANES", "512", 1);
    EXPECT_EQ(batchLaneWords(), 8u);
    EXPECT_EQ(batchLaneWidth(), 512u);
    // Auto (unset or 0) picks a wide plane, never the 64-lane
    // oracle: that one is only ever an explicit request.
    unsetenv("DTANN_LANES");
    size_t auto_words = batchLaneWords();
    EXPECT_TRUE(auto_words == 4 || auto_words == 8);
    setenv("DTANN_LANES", "0", 1);
    EXPECT_EQ(batchLaneWords(), auto_words);
    // An unsupported width warns and falls back to auto rather than
    // aborting a campaign over a typo.
    setenv("DTANN_LANES", "128", 1);
    EXPECT_EQ(batchLaneWords(), auto_words);
}

TEST(LanePlane, EveryWidthHasAKernel)
{
    for (size_t words : {1u, 4u, 8u}) {
        EXPECT_NE(laneSweepFor(words), nullptr) << words;
        EXPECT_NE(laneSweepGeneric(words), nullptr) << words;
        EXPECT_NE(laneSweepIsaFor(words), nullptr) << words;
    }
    EXPECT_STREQ(laneSweepIsaFor(1), "scalar64");
    EXPECT_EQ(std::string(batchLaneIsa()),
              laneSweepIsaFor(batchLaneWords()));
}

/** 200 packed vectors through a 12-bit multiplier netlist. */
std::vector<uint64_t>
sweepAtWidth(const Netlist &nl, const FaultSet &faults, CleanFn clean,
             size_t lanes, const std::vector<uint64_t> &in)
{
    auto ev = BatchEvaluator::tryCreate(nl, faults, clean, lanes);
    EXPECT_TRUE(ev.has_value());
    EXPECT_EQ(ev->laneCount(), lanes);
    std::vector<uint64_t> out(in.size());
    // Deliberately sweep in chunks that do not divide the plane
    // width so partially-filled planes are covered too.
    size_t chunk = lanes - 3;
    for (size_t off = 0; off < in.size(); off += chunk) {
        size_t n = std::min(chunk, in.size() - off);
        ev->evaluateLanes(in.data() + off, out.data() + off, n);
    }
    return out;
}

TEST(LanePlane, CleanSweepBitIdenticalAcrossWidths)
{
    Netlist nl = buildMultiplierUnsigned(6, FaStyle::Nand9);
    Rng rng(11);
    std::vector<uint64_t> in(200);
    for (auto &v : in)
        v = rng.nextUint(1ull << 12);

    auto oracle = sweepAtWidth(nl, {}, {}, 64, in);
    EXPECT_EQ(sweepAtWidth(nl, {}, {}, 256, in), oracle);
    EXPECT_EQ(sweepAtWidth(nl, {}, {}, 512, in), oracle);
}

TEST(LanePlane, FaultySweepBitIdenticalAcrossWidths)
{
    // Random transistor injections exercise the truth-table value
    // planes and the stuck input/output forces at every width.
    Netlist nl = buildMultiplierUnsigned(6, FaStyle::Nand9);
    CleanFn clean = cleanMultiplierUnsigned(6);
    Rng rng(12);
    int faulty_trials = 0;
    for (int trial = 0; trial < 40; ++trial) {
        Injection inj =
            injectTransistorDefects(nl, 1 + (trial % 4), rng);
        if (!inj.faults.isStateless())
            continue;
        ++faulty_trials;
        std::vector<uint64_t> in(200);
        for (auto &v : in)
            v = rng.nextUint(1ull << 12);
        auto oracle = sweepAtWidth(nl, inj.faults, clean, 64, in);
        EXPECT_EQ(sweepAtWidth(nl, inj.faults, clean, 256, in), oracle)
            << "trial " << trial;
        EXPECT_EQ(sweepAtWidth(nl, inj.faults, clean, 512, in), oracle)
            << "trial " << trial;
    }
    EXPECT_GT(faulty_trials, 5);
}

TEST(LanePlane, FullPlanesMatchSingleWordOracle)
{
    // Exactly full wide planes (no partial-plane masking in play):
    // the dispatched — on this machine possibly SIMD — kernels must
    // reproduce the single-word 64-lane sweep bit for bit.
    Netlist nl = buildMultiplierUnsigned(6, FaStyle::Nand9);
    Rng rng(13);
    Injection inj = injectTransistorDefects(nl, 2, rng);
    while (!inj.faults.isStateless())
        inj = injectTransistorDefects(nl, 2, rng);

    std::vector<uint64_t> in(512);
    for (auto &v : in)
        v = rng.nextUint(1ull << 12);

    std::vector<uint64_t> oracle(in.size());
    BatchEvaluator ev64(nl, inj.faults, cleanMultiplierUnsigned(6),
                        64);
    for (size_t off = 0; off < in.size(); off += 64)
        ev64.evaluateLanes(in.data() + off, oracle.data() + off, 64);

    for (size_t words : {4u, 8u}) {
        size_t lanes = 64 * words;
        BatchEvaluator ev(nl, inj.faults,
                          cleanMultiplierUnsigned(6), lanes);
        std::vector<uint64_t> out(in.size());
        for (size_t off = 0; off < in.size(); off += lanes)
            ev.evaluateLanes(in.data() + off, out.data() + off,
                             lanes);
        EXPECT_EQ(out, oracle) << "words " << words;
    }
}

} // namespace
} // namespace dtann
