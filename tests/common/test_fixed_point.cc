/**
 * @file
 * Unit tests for Q6.10 fixed-point arithmetic.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed_point.hh"
#include "common/rng.hh"

namespace dtann {
namespace {

TEST(Fix16, RoundTripSmallValues)
{
    for (double x : {0.0, 1.0, -1.0, 0.5, -0.5, 3.25, -7.875}) {
        Fix16 f = Fix16::fromDouble(x);
        EXPECT_DOUBLE_EQ(f.toDouble(), x) << "x=" << x;
    }
}

TEST(Fix16, FromDoubleRounds)
{
    // 0.00049 is just under half an LSB (1/2048 = 0.000488...).
    EXPECT_EQ(Fix16::fromDouble(0.00048).raw(), 0);
    EXPECT_EQ(Fix16::fromDouble(0.0006).raw(), 1);
    EXPECT_EQ(Fix16::fromDouble(-0.0006).raw(), -1);
}

TEST(Fix16, FromDoubleSaturates)
{
    EXPECT_EQ(Fix16::fromDouble(1000.0).raw(), Fix16::rawMax);
    EXPECT_EQ(Fix16::fromDouble(-1000.0).raw(), Fix16::rawMin);
    EXPECT_NEAR(Fix16::fromDouble(1000.0).toDouble(), 32.0, 0.01);
}

TEST(Fix16, HwAddWraps)
{
    Fix16 max = Fix16::fromRaw(Fix16::rawMax);
    Fix16 one = Fix16::fromRaw(1);
    EXPECT_EQ(Fix16::hwAdd(max, one).raw(), Fix16::rawMin);
}

TEST(Fix16, SatAddClips)
{
    Fix16 max = Fix16::fromRaw(Fix16::rawMax);
    Fix16 one = Fix16::fromRaw(1);
    EXPECT_EQ(Fix16::satAdd(max, one).raw(), Fix16::rawMax);
    Fix16 min = Fix16::fromRaw(Fix16::rawMin);
    EXPECT_EQ(Fix16::satAdd(min, Fix16::fromRaw(-1)).raw(), Fix16::rawMin);
}

TEST(Fix16, HwMulBasic)
{
    Fix16 a = Fix16::fromDouble(2.0);
    Fix16 b = Fix16::fromDouble(3.5);
    EXPECT_DOUBLE_EQ(Fix16::hwMul(a, b).toDouble(), 7.0);
    EXPECT_DOUBLE_EQ(Fix16::hwMul(a, Fix16::fromDouble(-3.5)).toDouble(),
                     -7.0);
}

TEST(Fix16, HwMulTruncatesTowardMinusInf)
{
    // 1/1024 * 1/1024 = 2^-20, truncates to 0.
    Fix16 eps = Fix16::fromRaw(1);
    EXPECT_EQ(Fix16::hwMul(eps, eps).raw(), 0);
    // -eps * eps = -2^-20; arithmetic shift gives -1 (floor).
    EXPECT_EQ(Fix16::hwMul(Fix16::fromRaw(-1), eps).raw(), -1);
}

TEST(Fix16, HwMulMatchesWideReference)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        int16_t ra = static_cast<int16_t>(rng.nextInt(-32768, 32767));
        int16_t rb = static_cast<int16_t>(rng.nextInt(-32768, 32767));
        int32_t wide = (static_cast<int32_t>(ra) * rb) >> 10;
        int16_t expect = static_cast<int16_t>(static_cast<uint32_t>(wide));
        EXPECT_EQ(Fix16::hwMul(Fix16::fromRaw(ra), Fix16::fromRaw(rb)).raw(),
                  expect);
    }
}

TEST(Fix16, SatMulClips)
{
    Fix16 big = Fix16::fromDouble(31.0);
    EXPECT_EQ(Fix16::satMul(big, big).raw(), Fix16::rawMax);
    EXPECT_EQ(Fix16::satMul(big, Fix16::fromDouble(-31.0)).raw(),
              Fix16::rawMin);
}

TEST(Acc24, FromFix16SignExtends)
{
    Acc24 a = Acc24::fromFix16(Fix16::fromDouble(-1.0));
    EXPECT_EQ(a.raw(), -1024);
    EXPECT_DOUBLE_EQ(a.toDouble(), -1.0);
}

TEST(Acc24, HwAddWrapsAt24Bits)
{
    Acc24 max = Acc24::fromRaw(Acc24::rawMax);
    Acc24 one = Acc24::fromRaw(1);
    EXPECT_EQ(Acc24::hwAdd(max, one).raw(), Acc24::rawMin);
}

TEST(Acc24, AccumulateNinetyProductsNoOverflow)
{
    // 90 products of magnitude <= 31.97 fit comfortably in Q14.10.
    Acc24 sum;
    Fix16 p = Fix16::fromDouble(31.0);
    for (int i = 0; i < 90; ++i)
        sum = Acc24::hwAdd(sum, Acc24::fromFix16(p));
    EXPECT_DOUBLE_EQ(sum.toDouble(), 90 * 31.0);
}

TEST(Acc24, ToFix16Saturates)
{
    Acc24 big = Acc24::fromRaw(100 * 1024);
    EXPECT_EQ(big.toFix16Sat().raw(), Fix16::rawMax);
    Acc24 small = Acc24::fromRaw(-100 * 1024);
    EXPECT_EQ(small.toFix16Sat().raw(), Fix16::rawMin);
    Acc24 mid = Acc24::fromRaw(1024);
    EXPECT_DOUBLE_EQ(mid.toFix16Sat().toDouble(), 1.0);
}

TEST(Acc24, BitsMasksTo24)
{
    EXPECT_EQ(Acc24::fromRaw(-1).bits(), 0xffffffu);
    EXPECT_EQ(Acc24::fromRaw(1).bits(), 1u);
}

} // namespace
} // namespace dtann
