/**
 * @file
 * Unit tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace dtann {
namespace {

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStat, MinMax)
{
    RunningStat s;
    s.add(-3.0);
    s.add(10.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(RunningStat, SingleSampleVarianceIsZero)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(IntHistogram, CountsAndTotal)
{
    IntHistogram h;
    h.add(3);
    h.add(3);
    h.add(-1);
    h.add(7, 5);
    EXPECT_EQ(h.at(3), 2u);
    EXPECT_EQ(h.at(-1), 1u);
    EXPECT_EQ(h.at(7), 5u);
    EXPECT_EQ(h.at(100), 0u);
    EXPECT_EQ(h.total(), 8u);
}

TEST(IntHistogram, ItemsSorted)
{
    IntHistogram h;
    h.add(5);
    h.add(-2);
    h.add(3);
    auto items = h.items();
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0].first, -2);
    EXPECT_EQ(items[1].first, 3);
    EXPECT_EQ(items[2].first, 5);
}

TEST(IntHistogram, Merge)
{
    IntHistogram a, b;
    a.add(1);
    b.add(1);
    b.add(2);
    a.merge(b);
    EXPECT_EQ(a.at(1), 2u);
    EXPECT_EQ(a.at(2), 1u);
}

TEST(IntHistogram, TotalVariationIdentical)
{
    IntHistogram a, b;
    for (int i = 0; i < 10; ++i) {
        a.add(i);
        b.add(i);
    }
    EXPECT_DOUBLE_EQ(a.totalVariation(b), 0.0);
}

TEST(IntHistogram, TotalVariationDisjoint)
{
    IntHistogram a, b;
    a.add(0);
    b.add(1);
    EXPECT_DOUBLE_EQ(a.totalVariation(b), 1.0);
}

TEST(IntHistogram, TotalVariationScaleInvariant)
{
    IntHistogram a, b;
    a.add(0, 1);
    a.add(1, 1);
    b.add(0, 50);
    b.add(1, 50);
    EXPECT_DOUBLE_EQ(a.totalVariation(b), 0.0);
}

TEST(IntHistogram, TotalVariationHalfOverlap)
{
    IntHistogram a, b;
    a.add(0, 2);
    b.add(0, 1);
    b.add(1, 1);
    EXPECT_DOUBLE_EQ(a.totalVariation(b), 0.5);
}

TEST(LogBins, BinPlacement)
{
    LogBins bins(-3, 3, 1);
    bins.add(0.005, 1.0);  // decade [1e-3, 1e-2) -> bin 1
    bins.add(500.0, 2.0);  // decade [1e2, 1e3) -> bin 6
    EXPECT_EQ(bins.binStat(1).count(), 1u);
    EXPECT_DOUBLE_EQ(bins.binStat(1).mean(), 1.0);
    EXPECT_EQ(bins.binStat(6).count(), 1u);
    EXPECT_DOUBLE_EQ(bins.binStat(6).mean(), 2.0);
}

TEST(LogBins, UnderAndOverflow)
{
    LogBins bins(-3, 3, 1);
    bins.add(1e-9, 1.0);
    bins.add(0.0, 1.0);
    bins.add(1e9, 1.0);
    EXPECT_EQ(bins.binStat(0).count(), 2u);
    EXPECT_EQ(bins.binStat(bins.numBins() - 1).count(), 1u);
}

TEST(LogBins, CenterIsGeometric)
{
    LogBins bins(-3, 3, 1);
    // Bin 1 spans [1e-3, 1e-2); its center is 10^-2.5.
    EXPECT_NEAR(bins.binCenter(1), std::pow(10.0, -2.5), 1e-12);
}

} // namespace
} // namespace dtann
