/**
 * @file
 * Unit tests for the fixed-size worker pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hh"

namespace dtann {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 4, 8}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.size(), threads);
        std::vector<std::atomic<int>> hits(257);
        pool.parallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, EmptyBatchIsANoop)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.parallelFor(0, [&](size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::vector<int> sums;
    for (int batch = 0; batch < 5; ++batch) {
        std::atomic<int> sum{0};
        pool.parallelFor(100, [&](size_t i) {
            sum += static_cast<int>(i);
        });
        sums.push_back(sum.load());
    }
    for (int s : sums)
        EXPECT_EQ(s, 4950);
}

TEST(ThreadPool, PropagatesFirstException)
{
    for (int threads : {1, 4}) {
        ThreadPool pool(threads);
        std::atomic<int> completed{0};
        EXPECT_THROW(
            pool.parallelFor(64,
                             [&](size_t i) {
                                 if (i == 13)
                                     throw std::runtime_error("boom");
                                 ++completed;
                             }),
            std::runtime_error);
        // The batch still drains: every non-throwing index ran.
        EXPECT_EQ(completed.load(), 63);
        // And the pool survives for the next batch.
        std::atomic<int> again{0};
        pool.parallelFor(8, [&](size_t) { ++again; });
        EXPECT_EQ(again.load(), 8);
    }
}

TEST(ThreadPool, ResolveThreadsPrefersExplicitRequest)
{
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3);
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
}

TEST(ThreadPool, ResolveThreadsReadsEnvironment)
{
    setenv("DTANN_THREADS", "5", 1);
    EXPECT_EQ(ThreadPool::resolveThreads(0), 5);
    EXPECT_EQ(ThreadPool::resolveThreads(2), 2); // explicit wins
    unsetenv("DTANN_THREADS");
    EXPECT_GE(ThreadPool::resolveThreads(0), 1);
}

} // namespace
} // namespace dtann
