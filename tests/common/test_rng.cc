/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace dtann {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextUint(1000), b.nextUint(1000));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextUint(1000000) == b.nextUint(1000000))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, NextUintInRange)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextUint(7), 7u);
}

TEST(Rng, NextIntInclusiveBounds)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        int64_t v = rng.nextInt(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussRoughMoments)
{
    Rng rng(11);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGauss();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, SplitStreamsIndependent)
{
    Rng parent(42);
    Rng a = parent.split();
    Rng b = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextUint(1000000) == b.nextUint(1000000))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsOrderDependent)
{
    // Documented contract: split() draws from the parent engine, so
    // the n-th split depends on how many draws preceded it. This is
    // exactly why parallel code must use substream() instead.
    Rng p1(42), p2(42);
    (void)p2.nextUint(10); // one extra draw shifts every later split
    Rng a = p1.split();
    Rng b = p2.split();
    EXPECT_NE(a.nextUint(1u << 30), b.nextUint(1u << 30));
}

TEST(Rng, SubstreamIsPureFunctionOfSeedAndPath)
{
    // Same (seed, path) always yields the same stream, regardless
    // of any other RNG activity.
    Rng noise(1);
    Rng a = Rng::substream(99, {3, 1, 4});
    for (int i = 0; i < 57; ++i)
        (void)noise.nextDouble();
    Rng b = Rng::substream(99, {3, 1, 4});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextUint(1u << 30), b.nextUint(1u << 30));
}

TEST(Rng, SubstreamDistinctPathsDiffer)
{
    // Differing in any coordinate — or in coordinate order — gives
    // an independent stream.
    Rng a = Rng::substream(7, {1, 2});
    Rng b = Rng::substream(7, {2, 1});
    Rng c = Rng::substream(7, {1, 3});
    Rng d = Rng::substream(8, {1, 2});
    int ab = 0, ac = 0, ad = 0;
    for (int i = 0; i < 100; ++i) {
        uint64_t va = a.nextUint(1000000);
        ab += va == b.nextUint(1000000);
        ac += va == c.nextUint(1000000);
        ad += va == d.nextUint(1000000);
    }
    EXPECT_LT(ab, 3);
    EXPECT_LT(ac, 3);
    EXPECT_LT(ad, 3);
}

TEST(Rng, SubstreamAdjacentCountersDecorrelated)
{
    // Counter-based splitting must avalanche: neighbouring cell
    // coordinates (rep k vs rep k+1) share no structure.
    Rng a = Rng::substream(1, {5, 0, 0});
    Rng b = Rng::substream(1, {5, 0, 1});
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.nextUint(1000000) == b.nextUint(1000000))
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    rng.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, SampleWithoutReplacementDistinct)
{
    Rng rng(17);
    auto s = rng.sampleWithoutReplacement(50, 20);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 20u);
    for (size_t i : s)
        EXPECT_LT(i, 50u);
}

TEST(Rng, SampleFullPopulation)
{
    Rng rng(17);
    auto s = rng.sampleWithoutReplacement(5, 5);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 5u);
}

} // namespace
} // namespace dtann
