/**
 * @file
 * Unit tests for the table/series printers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/table.hh"

namespace dtann {
namespace {

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator line present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RowsAppearInOrder)
{
    TextTable t({"c"});
    t.addRow({"first"});
    t.addRow({"second"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_LT(out.find("first"), out.find("second"));
}

TEST(FmtDouble, Digits)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(-0.5, 1), "-0.5");
}

TEST(Slugify, ProducesSafeNames)
{
    EXPECT_EQ(slugify("Fig 10: accuracy vs # defects"),
              "fig_10_accuracy_vs_defects");
    EXPECT_EQ(slugify("***"), "series");
    EXPECT_EQ(slugify("plain"), "plain");
}

TEST(PrintSeries, WritesCsvWhenRequested)
{
    std::string dir = ::testing::TempDir();
    setenv("DTANN_OUT", dir.c_str(), 1);
    std::ostringstream os;
    printSeries(os, "csv test series", {"x", "y"}, {{1.0, 2.5}});
    unsetenv("DTANN_OUT");
    std::ifstream in(dir + "/csv_test_series.csv");
    ASSERT_TRUE(in.good());
    std::string header, row;
    std::getline(in, header);
    std::getline(in, row);
    EXPECT_EQ(header, "x,y");
    EXPECT_EQ(row, "1,2.5");
    std::remove((dir + "/csv_test_series.csv").c_str());
}

TEST(PrintSeries, ContainsTitleAndPoints)
{
    std::ostringstream os;
    printSeries(os, "fig-x", {"x", "y"}, {{1.0, 2.0}, {3.0, 4.0}});
    std::string out = os.str();
    EXPECT_NE(out.find("# fig-x"), std::string::npos);
    EXPECT_NE(out.find("1.0000"), std::string::npos);
    EXPECT_NE(out.find("4.0000"), std::string::npos);
}

} // namespace
} // namespace dtann
