/**
 * @file
 * Tests for logging severities and the experiment-scaling knobs.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"

namespace dtann {
namespace {

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("internal invariant %d", 42), "panic.*42");
}

TEST(Logging, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config '%s'", "x"),
                ::testing::ExitedWithCode(1), "fatal.*bad config");
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("just a warning %d", 1);
    inform("status %s", "ok");
    SUCCEED();
}

TEST(Logging, AssertMacroPassesThrough)
{
    dtann_assert(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(Logging, AssertMacroFailsWithMessage)
{
    EXPECT_DEATH(
        { dtann_assert(false, "value was %d", 7); },
        "assertion 'false' failed: value was 7");
}

TEST(Env, FullScaleFollowsVariable)
{
    unsetenv("DTANN_FULL");
    EXPECT_FALSE(fullScale());
    EXPECT_EQ(scaled(1000, 10), 10);
    setenv("DTANN_FULL", "1", 1);
    EXPECT_TRUE(fullScale());
    EXPECT_EQ(scaled(1000, 10), 1000);
    setenv("DTANN_FULL", "0", 1);
    EXPECT_FALSE(fullScale());
    unsetenv("DTANN_FULL");
}

TEST(Env, SeedDefaultsAndOverrides)
{
    unsetenv("DTANN_SEED");
    EXPECT_EQ(experimentSeed(), 20120609UL);
    setenv("DTANN_SEED", "777", 1);
    EXPECT_EQ(experimentSeed(), 777UL);
    unsetenv("DTANN_SEED");
}

TEST(Env, SeedRejectsInvalidValues)
{
    // Negative, non-numeric, trailing garbage, and empty values all
    // fall back to the default seed instead of silently misparsing
    // (strtoul would wrap "-1" to 2^64-1).
    for (const char *bad : {"-1", "abc", "12x", "", " ", "+3", "1e6"}) {
        setenv("DTANN_SEED", bad, 1);
        EXPECT_EQ(experimentSeed(), 20120609UL)
            << "DTANN_SEED='" << bad << "'";
    }
    unsetenv("DTANN_SEED");
}

TEST(Env, ThreadCountParsesAndValidates)
{
    unsetenv("DTANN_THREADS");
    EXPECT_EQ(threadCount(), 0);
    setenv("DTANN_THREADS", "4", 1);
    EXPECT_EQ(threadCount(), 4);
    for (const char *bad : {"-2", "none", "3threads", "1000000"}) {
        setenv("DTANN_THREADS", bad, 1);
        EXPECT_EQ(threadCount(), 0) << "DTANN_THREADS='" << bad << "'";
    }
    unsetenv("DTANN_THREADS");
}

TEST(Env, DumpRunsWithAndWithoutKnobsSet)
{
    unsetenv("DTANN_SEED");
    unsetenv("DTANN_THREADS");
    env::dump();
    setenv("DTANN_SEED", "42", 1);
    setenv("DTANN_THREADS", "2", 1);
    env::dump();
    unsetenv("DTANN_SEED");
    unsetenv("DTANN_THREADS");
    SUCCEED();
}

} // namespace
} // namespace dtann
