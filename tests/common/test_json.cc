/**
 * @file
 * JSON reader tests: the parser that backs scenario specs and
 * result journals, and its symmetry with the emission helpers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/json.hh"

namespace dtann {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(jsonParse("null").isNull());
    EXPECT_TRUE(jsonParse("true").asBool());
    EXPECT_FALSE(jsonParse("false").asBool());
    EXPECT_DOUBLE_EQ(jsonParse("3.25").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(jsonParse("-4e2").asNumber(), -400.0);
    EXPECT_EQ(jsonParse("42").asInt(), 42);
    EXPECT_EQ(jsonParse("\"hi\"").asString(), "hi");
}

TEST(JsonParse, Containers)
{
    JsonValue v = jsonParse("[1, [2, 3], {\"a\": 4}]");
    ASSERT_TRUE(v.isArray());
    ASSERT_EQ(v.items().size(), 3u);
    EXPECT_EQ(v.items()[0].asInt(), 1);
    EXPECT_EQ(v.items()[1].items()[1].asInt(), 3);
    EXPECT_EQ(v.items()[2].at("a").asInt(), 4);
}

TEST(JsonParse, ObjectKeepsInsertionOrder)
{
    JsonValue v = jsonParse("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(jsonParse("\"a\\\"b\\\\c\\n\"").asString(), "a\"b\\c\n");
    // \u escapes decode to UTF-8.
    EXPECT_EQ(jsonParse("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(jsonParse("\"\\u00e9\"").asString(), "\xc3\xa9");
}

TEST(JsonParse, EscapeEmitParseRoundTrip)
{
    std::string nasty = "line\nquote\"back\\slash\ttab\x01";
    EXPECT_EQ(jsonParse(jsonString(nasty)).asString(), nasty);
}

TEST(JsonParse, NumberRoundTripsExactly)
{
    for (double x : {0.1, 1.0 / 3.0, 1e-300, -2.5e17,
                     std::numeric_limits<double>::denorm_min()})
        EXPECT_EQ(jsonParse(jsonNumber(x)).asNumber(), x);
}

TEST(JsonParse, Uint64BeyondDoubleRange)
{
    // 2^63 + 1 is not representable as a double integer; asUint()
    // must recover it from the raw token.
    uint64_t big = (1ull << 63) + 1;
    JsonValue v = jsonParse(std::to_string(big));
    EXPECT_EQ(v.asUint(), big);
}

TEST(JsonParse, ErrorsCarryPosition)
{
    try {
        jsonParse("{\"a\": 1,\n  oops}");
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

TEST(JsonParse, RejectsMalformedDocuments)
{
    EXPECT_THROW(jsonParse(""), JsonError);
    EXPECT_THROW(jsonParse("{\"a\":}"), JsonError);
    EXPECT_THROW(jsonParse("[1,]"), JsonError);
    EXPECT_THROW(jsonParse("\"unterminated"), JsonError);
    EXPECT_THROW(jsonParse("{\"a\":1} trailing"), JsonError);
    EXPECT_THROW(jsonParse("nul"), JsonError);
    EXPECT_THROW(jsonParse("\"bad \\q escape\""), JsonError);
}

TEST(JsonParse, RejectsDuplicateKeys)
{
    EXPECT_THROW(jsonParse("{\"a\": 1, \"a\": 2}"), JsonError);
}

TEST(JsonValueAccessors, KindMismatchesThrow)
{
    JsonValue v = jsonParse("{\"s\": \"x\", \"n\": 1.5}");
    EXPECT_THROW(v.at("s").asNumber(), JsonError);
    EXPECT_THROW(v.at("n").asString(), JsonError);
    EXPECT_THROW(v.at("n").items(), JsonError);
    EXPECT_THROW(v.asNumber(), JsonError); // object is not a number
    EXPECT_THROW(v.at("missing"), JsonError);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValueAccessors, IntRangeChecks)
{
    EXPECT_THROW(jsonParse("1.5").asInt(), JsonError);
    EXPECT_THROW(jsonParse("300").asInt(0, 255), JsonError);
    EXPECT_THROW(jsonParse("-1").asUint(), JsonError);
    EXPECT_EQ(jsonParse("255").asInt(0, 255), 255);
}

TEST(JsonTypedReaders, FallbackAndMismatch)
{
    JsonValue v = jsonParse(
        "{\"i\": 7, \"d\": 0.5, \"b\": true, \"s\": \"str\","
        " \"ia\": [1,2], \"sa\": [\"x\"]}");
    EXPECT_EQ(jsonGetInt(v, "i", -1), 7);
    EXPECT_EQ(jsonGetInt(v, "absent", -1), -1);
    EXPECT_DOUBLE_EQ(jsonGetDouble(v, "d", 0.0), 0.5);
    EXPECT_TRUE(jsonGetBool(v, "b", false));
    EXPECT_EQ(jsonGetString(v, "s", ""), "str");
    EXPECT_EQ(jsonGetIntArray(v, "ia", {}),
              (std::vector<int>{1, 2}));
    EXPECT_EQ(jsonGetStringArray(v, "sa", {}),
              (std::vector<std::string>{"x"}));

    // Mismatches name the offending key.
    try {
        jsonGetInt(v, "s", 0);
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_NE(std::string(e.what()).find("'s'"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_THROW(jsonGetIntArray(v, "sa", {}), JsonError);
}

} // namespace
} // namespace dtann
